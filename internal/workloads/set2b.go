package workloads

import (
	"fmt"

	"gpushare/internal/isa"
	"gpushare/internal/kernel"
	"gpushare/internal/mem"
)

// NW1 and NW2 are the needle_cuda_shared_1/2 proxies: Needleman-Wunsch
// wavefront alignment over a 16x16 tile held in scratchpad, one diagonal
// per step with predicated lanes. The 2180-byte footprint is exactly a
// 17x17 score matrix (1156B) plus a 16x16 reference tile (1024B), both
// mostly above the 218-byte private bound at t=0.1, so shared pairs
// contend for the scratchpad lock. 16 threads/block (one half-warp).
var NW1 = register(&Spec{
	Name: "NW1", Suite: "RODINIA", Kernel: "needle_cuda_shared_1",
	Set: Set2, BlockDim: 16, RegsPerThread: 16, SmemPerBlock: 2180,
	Build: func(scale int) *Instance { return buildNW("NW1", 16, 448*scale) },
})

// NW2 processes the full wavefront (both triangles), running almost
// twice the steps of NW1.
var NW2 = register(&Spec{
	Name: "NW2", Suite: "RODINIA", Kernel: "needle_cuda_shared_2",
	Set: Set2, BlockDim: 16, RegsPerThread: 16, SmemPerBlock: 2180,
	Build: func(scale int) *Instance { return buildNW("NW2", 30, 448*scale) },
})

const (
	nwTile   = 16
	nwStride = 16 // matrix row stride in words: diagonal
	// accesses then hit 16 distinct banks
	nwRefOff  = 4 * (nwTile*nwStride + nwTile + 1) // 1092: ref tile after the matrix
	nwPenalty = 10
)

func buildNW(name string, steps, grid int) *Instance {
	n := grid * nwTile

	b := kernel.NewBuilder(name, nwTile)
	b.Params(2).SetSmem(2180).SetRegs(16)
	const (
		rTid, rRef, rOut, rI16, rRB = 10, 11, 12, 13, 14
		rJ, rJ4, rA, rV, rD, rU, rL = 0, 1, 2, 3, 4, 5, 6
		rR, rT, rG                  = 7, 8, 9
	)
	b.Mov(rTid, isa.Sreg(isa.SrTid))
	b.LdParam(rRef, 0)
	b.LdParam(rOut, 1)
	// Boundary: m[0][tid+1] = m[tid+1][0] = -(tid+1)*penalty. With the
	// 16-word stride, word 16 is both (0,16) and (1,0); the column
	// store below executes second and deterministically wins.
	b.IAdd(rT, isa.Reg(rTid), isa.Imm(1))
	b.IMul(rV, isa.Reg(rT), isa.Imm(-nwPenalty))
	b.Shl(rA, isa.Reg(rT), isa.Imm(2))
	b.StS(isa.Reg(rA), 0, isa.Reg(rV)) // row 0
	b.Shl(rA, isa.Reg(rT), isa.Imm(6))
	b.StS(isa.Reg(rA), 0, isa.Reg(rV)) // column 0
	// Stage the reference tile transposed (ref'[c*16+r] = refG[r*16+c])
	// so wavefront reads are bank-conflict free.
	b.Mov(rT, isa.Sreg(isa.SrCtaid))
	b.IMul(rT, isa.Reg(rT), isa.Imm(nwTile*nwTile*4))
	b.IAdd(rT, isa.Reg(rT), isa.Reg(rRef))
	b.Shl(rA, isa.Reg(rTid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rT), isa.Reg(rA)) // global addr of refG[0*16+tid]
	b.Shl(rA, isa.Reg(rTid), isa.Imm(6)) // smem byte base of ref'[tid*16]
	for r := 0; r < nwTile; r++ {
		b.LdG(rV, isa.Reg(rT), int32(4*nwTile*r))
		b.StS(isa.Reg(rA), int32(nwRefOff+4*r), isa.Reg(rV))
	}
	b.Bar()
	// Precompute the byte base of row tid+1 and of the ref column.
	b.IAdd(rT, isa.Reg(rTid), isa.Imm(1))
	b.Shl(rI16, isa.Reg(rT), isa.Imm(6)) // (tid+1)*16 words -> bytes
	b.Shl(rRB, isa.Reg(rTid), isa.Imm(2))
	b.IAdd(rRB, isa.Reg(rRB), isa.Imm(nwRefOff-64))
	for s := 0; s < steps; s++ {
		// j = s+1-tid; active when 1 <= j <= 16.
		b.MovI(rJ, int32(s+1))
		b.ISub(rJ, isa.Reg(rJ), isa.Reg(rTid))
		b.IAdd(rT, isa.Reg(rJ), isa.Imm(-1))
		b.Setp(isa.CmpLTU, 0, isa.Reg(rT), isa.Imm(nwTile))
		// addr = row base + j*4
		b.Guard(0, false)
		b.Shl(rJ4, isa.Reg(rJ), isa.Imm(2))
		b.Guard(0, false)
		b.IAdd(rA, isa.Reg(rI16), isa.Reg(rJ4))
		b.Guard(0, false)
		b.LdS(rD, isa.Reg(rA), -4*(nwStride+1)) // diagonal
		b.Guard(0, false)
		b.LdS(rU, isa.Reg(rA), -4*nwStride) // up
		b.Guard(0, false)
		b.LdS(rL, isa.Reg(rA), -4) // left
		// refv = ref'[(j-1)*16 + tid]
		b.Guard(0, false)
		b.Shl(rT, isa.Reg(rJ), isa.Imm(6))
		b.Guard(0, false)
		b.IAdd(rT, isa.Reg(rRB), isa.Reg(rT))
		b.Guard(0, false)
		b.LdS(rR, isa.Reg(rT), 0)
		b.Guard(0, false)
		b.IAdd(rD, isa.Reg(rD), isa.Reg(rR))
		b.Guard(0, false)
		b.IAdd(rU, isa.Reg(rU), isa.Imm(-nwPenalty))
		b.Guard(0, false)
		b.IAdd(rL, isa.Reg(rL), isa.Imm(-nwPenalty))
		b.Guard(0, false)
		b.IMax(rU, isa.Reg(rU), isa.Reg(rL))
		b.Guard(0, false)
		b.IMax(rD, isa.Reg(rD), isa.Reg(rU))
		b.Guard(0, false)
		b.StS(isa.Reg(rA), 0, isa.Reg(rD))
		b.Bar()
	}
	// out[gid] = m[tid+1][16-tid] for NW1 (last anti-diagonal cell this
	// thread computed); for NW2 every cell is final so use m[tid+1][16].
	if steps >= 2*nwTile-2 {
		b.MovI(rJ, int32(nwTile))
	} else {
		b.MovI(rJ, int32(nwTile))
		b.ISub(rJ, isa.Reg(rJ), isa.Reg(rTid))
	}
	b.Shl(rJ4, isa.Reg(rJ), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rI16), isa.Reg(rJ4))
	b.LdS(rV, isa.Reg(rA), 0)
	emitGid(b, rG)
	b.Shl(rT, isa.Reg(rG), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rV))
	b.Exit()
	k := b.MustBuild()

	ref := make([]int32, n*nwTile)
	var refAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(113)
			for i := range ref {
				ref[i] = int32(rng.nextN(21)) - 10
			}
			refAddr = m.Alloc(4 * len(ref))
			outAddr = m.Alloc(4 * n)
			for i, v := range ref {
				m.Store32(refAddr+uint32(4*i), uint32(v))
			}
			launch.Params = []uint32{refAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			// The flat 16-word-stride matrix reproduces the kernel's
			// (benign, deterministic) word-16 alias of (0,16)/(1,0).
			mtx := make([]int32, nwTile*nwStride+nwTile+1)
			for blk := 0; blk < grid; blk++ {
				clear(mtx)
				for t := 1; t <= nwTile; t++ {
					mtx[t] = int32(-t * nwPenalty)
				}
				for t := 1; t <= nwTile; t++ {
					mtx[t*nwStride] = int32(-t * nwPenalty)
				}
				for s := 0; s < steps; s++ {
					for tid := 0; tid < nwTile; tid++ {
						j := s + 1 - tid
						if j < 1 || j > nwTile {
							continue
						}
						i := tid + 1
						d := mtx[(i-1)*nwStride+j-1] + ref[blk*nwTile*nwTile+(i-1)*nwTile+(j-1)]
						u := mtx[(i-1)*nwStride+j] - nwPenalty
						l := mtx[i*nwStride+j-1] - nwPenalty
						mtx[i*nwStride+j] = max(d, max(u, l))
					}
				}
				for tid := 0; tid < nwTile; tid++ {
					j := nwTile - tid
					if steps >= 2*nwTile-2 {
						j = nwTile
					}
					want := uint32(mtx[(tid+1)*nwStride+j])
					gid := blk*nwTile + tid
					if got := m.Load32(outAddr + uint32(4*gid)); got != want {
						return fmt.Errorf("%s out[%d] = %d, want %d", name, gid, int32(got), int32(want))
					}
				}
			}
			return nil
		},
	}
}

// SRAD1 is the srad_cuda_1 proxy: stage a 256-word tile (partly private),
// compute four directional derivatives into scratchpad regions that sit
// squarely in the shared pool, then a reciprocal-based diffusion update.
// 256 threads/block, 6144 bytes/block.
var SRAD1 = register(&Spec{
	Name: "SRAD1", Suite: "RODINIA", Kernel: "srad_cuda_1",
	Set: Set2, BlockDim: 256, RegsPerThread: 16, SmemPerBlock: 6144,
	Build: buildSRAD1,
})

func buildSRAD1(scale int) *Instance {
	grid := 224 * scale
	n := grid * 256
	const (
		tileOff = 0
		dNOff   = 1024
		dSOff   = 2048
		dWOff   = 3072
		dEOff   = 4096
	)

	b := kernel.NewBuilder("srad_cuda_1", 256)
	b.Params(2).SetSmem(6144).SetRegs(16)
	const (
		rTid, rGid, rIn, rOut          = 10, 11, 12, 13
		rA, rV, rT, rN, rS, rW, rE, rC = 0, 1, 2, 3, 4, 5, 6, 7
		rSum                           = 8
	)
	b.Mov(rTid, isa.Sreg(isa.SrTid))
	emitGid(b, rGid)
	b.LdParam(rIn, 0)
	b.LdParam(rOut, 1)
	// Load the centre value plus two global neighbours (the real
	// srad_cuda_1 reads the image and the c coefficients).
	b.Shl(rA, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rIn))
	b.LdG(rV, isa.Reg(rA), 0)
	b.IAdd(rT, isa.Reg(rTid), isa.Imm(-16))
	b.And(rT, isa.Reg(rT), isa.Imm(255))
	b.ISub(rT, isa.Reg(rT), isa.Reg(rTid))
	b.Shl(rT, isa.Reg(rT), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rT), isa.Reg(rA))
	b.LdG(rN, isa.Reg(rT), 0)
	b.IAdd(rT, isa.Reg(rTid), isa.Imm(16))
	b.And(rT, isa.Reg(rT), isa.Imm(255))
	b.ISub(rT, isa.Reg(rT), isa.Reg(rTid))
	b.Shl(rT, isa.Reg(rT), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rT), isa.Reg(rA))
	b.LdG(rS, isa.Reg(rT), 0)
	b.FAdd(rN, isa.Reg(rN), isa.Reg(rS))
	b.FFma(rV, isa.Reg(rN), isa.ImmF(0.0625), isa.Reg(rV))
	b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
	b.StS(isa.Reg(rT), tileOff, isa.Reg(rV))
	b.Bar()
	// Directional differences (wrap-around neighbours within the tile).
	emitSradNb(b, rN, rTid, -16)
	emitSradNb(b, rS, rTid, 16)
	emitSradNb(b, rW, rTid, -1)
	emitSradNb(b, rE, rTid, 1)
	b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
	b.FSub(rN, isa.Reg(rN), isa.Reg(rV))
	b.StS(isa.Reg(rT), dNOff, isa.Reg(rN))
	b.FSub(rS, isa.Reg(rS), isa.Reg(rV))
	b.StS(isa.Reg(rT), dSOff, isa.Reg(rS))
	b.FSub(rW, isa.Reg(rW), isa.Reg(rV))
	b.StS(isa.Reg(rT), dWOff, isa.Reg(rW))
	b.FSub(rE, isa.Reg(rE), isa.Reg(rV))
	b.StS(isa.Reg(rT), dEOff, isa.Reg(rE))
	// c = 1/(1 + dN^2+dS^2+dW^2+dE^2); out = v + 0.25*c*(dN+dS+dW+dE)
	b.FMul(rC, isa.Reg(rN), isa.Reg(rN))
	b.FFma(rC, isa.Reg(rS), isa.Reg(rS), isa.Reg(rC))
	b.FFma(rC, isa.Reg(rW), isa.Reg(rW), isa.Reg(rC))
	b.FFma(rC, isa.Reg(rE), isa.Reg(rE), isa.Reg(rC))
	b.FAdd(rC, isa.Reg(rC), isa.ImmF(1))
	b.FRcp(rC, isa.Reg(rC))
	b.FAdd(rSum, isa.Reg(rN), isa.Reg(rS))
	b.FAdd(rSum, isa.Reg(rSum), isa.Reg(rW))
	b.FAdd(rSum, isa.Reg(rSum), isa.Reg(rE))
	b.FMul(rSum, isa.Reg(rSum), isa.Reg(rC))
	b.FFma(rV, isa.Reg(rSum), isa.ImmF(0.25), isa.Reg(rV))
	// Refinement rounds (the real srad_cuda_1 computes the full
	// diffusion coefficient expression per direction).
	for round := 0; round < 3; round++ {
		b.FFma(rSum, isa.Reg(rV), isa.ImmF(0.5), isa.Reg(rSum))
		b.FFma(rSum, isa.Reg(rSum), isa.ImmF(-0.25), isa.Reg(rSum))
		b.FFma(rSum, isa.Reg(rSum), isa.ImmF(0.125), isa.Reg(rSum))
		b.FFma(rSum, isa.Reg(rSum), isa.ImmF(-0.0625), isa.Reg(rSum))
		b.FFma(rSum, isa.Reg(rSum), isa.ImmF(0.03125), isa.Reg(rSum))
		b.FFma(rSum, isa.Reg(rSum), isa.ImmF(-0.015625), isa.Reg(rSum))
		b.FFma(rV, isa.Reg(rSum), isa.ImmF(0.01), isa.Reg(rV))
	}
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rV))
	b.Exit()
	k := b.MustBuild()

	in := make([]float32, n)
	var inAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(127)
			for i := range in {
				in[i] = rng.nextFloat()
			}
			inAddr = m.Alloc(4 * n)
			outAddr = m.Alloc(4 * n)
			m.WriteFloats(inAddr, in)
			launch.Params = []uint32{inAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for blk := 0; blk < grid; blk += 5 {
				for tid := 0; tid < 256; tid += 37 {
					gnb := func(d int) float32 { return in[blk*256+(tid+d+256)&255] }
					v := (gnb(-16)+gnb(16))*0.0625 + in[blk*256+tid]
					tile := make([]float32, 256)
					for t2 := 0; t2 < 256; t2++ {
						tile[t2] = (in[blk*256+(t2-16+256)&255]+in[blk*256+(t2+16)&255])*0.0625 + in[blk*256+t2]
					}
					nb := func(d int) float32 { return tile[(tid+d+256)&255] }
					dn := nb(-16) - v
					ds := nb(16) - v
					dw := nb(-1) - v
					de := nb(1) - v
					c := dn * dn
					c = ds*ds + c
					c = dw*dw + c
					c = de*de + c
					c += 1
					c = 1 / c
					sum := dn + ds
					sum += dw
					sum += de
					sum *= c
					v = sum*0.25 + v
					for round := 0; round < 3; round++ {
						sum = v*0.5 + sum
						sum = sum*-0.25 + sum
						sum = sum*0.125 + sum
						sum = sum*-0.0625 + sum
						sum = sum*0.03125 + sum
						sum = sum*-0.015625 + sum
						v = sum*0.01 + v
					}
					want := f32bits(v)
					gid := blk*256 + tid
					if got := m.Load32(outAddr + uint32(4*gid)); got != want {
						return fmt.Errorf("SRAD1 out[%d] = %#x, want %#x", gid, got, want)
					}
				}
			}
			return nil
		},
	}
}

// emitSradNb loads the wrap-around tile neighbour at distance d into rd.
func emitSradNb(b *kernel.Builder, rd, rTid int, d int32) {
	const rTmp = 14 // scratch register shared by the helpers
	b.IAdd(rTmp, isa.Reg(rTid), isa.Imm(d))
	b.And(rTmp, isa.Reg(rTmp), isa.Imm(255))
	b.Shl(rTmp, isa.Reg(rTmp), isa.Imm(2))
	b.LdS(rd, isa.Reg(rTmp), 0)
}

// SRAD2 is the srad_cuda_2 proxy. Its defining trait (§VI-B): the very
// first scratchpad access of every thread lands in the shared region
// (byte 2048 of a 5120-byte block, private bound 512 at t=0.1) and is
// immediately followed by a barrier, so a non-owner block's warps make
// almost no progress until ownership transfers.
var SRAD2 = register(&Spec{
	Name: "SRAD2", Suite: "RODINIA", Kernel: "srad_cuda_2",
	Set: Set2, BlockDim: 256, RegsPerThread: 16, SmemPerBlock: 5120,
	Build: buildSRAD2,
})

const srad2Stage = 2048

func buildSRAD2(scale int) *Instance {
	grid := 280 * scale
	n := grid * 256

	b := kernel.NewBuilder("srad_cuda_2", 256)
	b.Params(2).SetSmem(5120).SetRegs(16)
	const (
		rTid, rGid, rIn, rOut     = 10, 11, 12, 13
		rA, rV, rT, rAcc, rJ, rNb = 0, 1, 2, 3, 4, 5
	)
	b.Mov(rTid, isa.Sreg(isa.SrTid))
	emitGid(b, rGid)
	b.LdParam(rIn, 0)
	b.LdParam(rOut, 1)
	b.Shl(rA, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rIn))
	b.LdG(rV, isa.Reg(rA), 0)
	// First scratchpad touch: deep inside the shared region.
	b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
	b.StS(isa.Reg(rT), srad2Stage, isa.Reg(rV))
	b.Bar()
	b.MovF(rAcc, 0)
	b.MovI(rJ, 0)
	b.Label("sweep")
	b.IAdd(rT, isa.Reg(rTid), isa.Reg(rJ))
	b.And(rT, isa.Reg(rT), isa.Imm(255))
	b.Shl(rT, isa.Reg(rT), isa.Imm(2))
	b.LdS(rNb, isa.Reg(rT), srad2Stage)
	b.FFma(rAcc, isa.Reg(rNb), isa.ImmF(0.0625), isa.Reg(rAcc))
	b.IAdd(rJ, isa.Reg(rJ), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rJ), isa.Imm(16))
	b.BraIf(0, false, "sweep", "fin")
	b.Label("fin")
	b.FFma(rV, isa.Reg(rAcc), isa.ImmF(0.5), isa.Reg(rV))
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rV))
	b.Exit()
	k := b.MustBuild()

	in := make([]float32, n)
	var inAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(131)
			for i := range in {
				in[i] = rng.nextFloat()
			}
			inAddr = m.Alloc(4 * n)
			outAddr = m.Alloc(4 * n)
			m.WriteFloats(inAddr, in)
			launch.Params = []uint32{inAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for blk := 0; blk < grid; blk += 5 {
				for tid := 0; tid < 256; tid += 41 {
					v := in[blk*256+tid]
					var acc float32
					for j := 0; j < 16; j++ {
						nb := in[blk*256+(tid+j)&255]
						acc = nb*0.0625 + acc
					}
					want := f32bits(acc*0.5 + v)
					gid := blk*256 + tid
					if got := m.Load32(outAddr + uint32(4*gid)); got != want {
						return fmt.Errorf("SRAD2 out[%d] = %#x, want %#x", gid, got, want)
					}
				}
			}
			return nil
		},
	}
}
