// Package workloads provides synthetic proxies for the 19 benchmark
// applications the paper evaluates (Tables II, III, IV). Each proxy
// matches its application's occupancy-relevant resource footprint exactly
// — threads per block, registers per thread, scratchpad bytes per block —
// and is written to exhibit the qualitative execution character the paper
// describes (compute-bound vs. cache-sensitive, divergent vs. regular,
// barrier placement relative to shared-scratchpad accesses, register
// declaration order).
//
// The proxies are deterministic: inputs come from a seeded generator and
// most workloads carry a functional self-check that recomputes the
// expected output on the host.
package workloads

import (
	"fmt"
	"math"

	"gpushare/internal/kernel"
	"gpushare/internal/mem"
)

// Set identifies which benchmark set a workload belongs to (§VI-A).
type Set int

// Benchmark sets.
const (
	Set1 Set = 1 // limited by registers (Table II)
	Set2 Set = 2 // limited by scratchpad memory (Table III)
	Set3 Set = 3 // limited by threads or blocks (Table IV)
)

// Spec describes one benchmark application.
type Spec struct {
	Name   string // paper name, e.g. "hotspot"
	Suite  string // benchmark suite, e.g. "RODINIA"
	Kernel string // kernel name from the paper's tables
	Set    Set

	BlockDim      int
	RegsPerThread int
	SmemPerBlock  int

	// Build instantiates the workload. scale multiplies the grid size
	// (1 = the experiment default used by the harness; benchmarks use
	// smaller scales).
	Build func(scale int) *Instance
}

// Instance is a runnable workload: a launch plus input setup and an
// optional functional check.
type Instance struct {
	Launch *kernel.Launch
	// Setup allocates and initializes inputs in global memory and fills
	// Launch.Params. It must be called exactly once before running.
	Setup func(m *mem.Global)
	// Check verifies functional outputs after the run; nil when the
	// workload has no host-side reference.
	Check func(m *mem.Global) error
}

var registry []*Spec

// extras are runnable specs outside the paper's 19-application registry
// (microbenchmarks). They are excluded from All/BySet but resolvable by
// name, so descriptor-addressed job runners (internal/runner) can
// rebuild any workload a harness experiment references.
var extras []*Spec

func register(s *Spec) *Spec {
	registry = append(registry, s)
	return s
}

// All returns every registered workload in registration (paper) order.
func All() []*Spec { return registry }

// BySet returns the workloads of one benchmark set, in paper order.
func BySet(s Set) []*Spec {
	var out []*Spec
	for _, w := range registry {
		if w.Set == s {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up by its paper name. Extra specs outside
// the paper registry (microbenchmarks) resolve too.
func ByName(name string) (*Spec, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range extras {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// Names returns all workload names in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// splitmix64 is the deterministic input generator.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextN returns a value in [0, n).
func (s *splitmix64) nextN(n int) uint32 { return uint32(s.next() % uint64(n)) }

// nextFloat returns a float32 in [0, 1).
func (s *splitmix64) nextFloat() float32 {
	return float32(s.next()>>40) / (1 << 24)
}

// checkWords compares n output words against want, reporting the first
// mismatch.
func checkWords(m *mem.Global, addr uint32, want []uint32, what string) error {
	for i, w := range want {
		if got := m.Load32(addr + uint32(4*i)); got != w {
			return fmt.Errorf("%s[%d] = %#x, want %#x", what, i, got, w)
		}
	}
	return nil
}

func f32bits(v float32) uint32 {
	return mem.F32Bits(v)
}

// exp2f32 mirrors the executor's FEXP semantics exactly.
func exp2f32(x float32) float32 {
	return float32(math.Exp2(float64(x)))
}

// sinf32 mirrors the executor's FSIN semantics exactly.
func sinf32(x float32) float32 {
	return float32(math.Sin(float64(x)))
}

// rcpf32 mirrors the executor's FRCP semantics exactly.
func rcpf32(x float32) float32 { return 1 / x }
