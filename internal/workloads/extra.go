package workloads

import (
	"fmt"

	"gpushare/internal/isa"
	"gpushare/internal/kernel"
	"gpushare/internal/mem"
)

// EpilogueMicro is a microbenchmark for the §VIII early-release
// extension, deliberately NOT part of the paper's 19 applications (it is
// not in the registry): a short shared-register phase followed by a long
// register-dead tail. With early release enabled, a warp's pair lock
// frees at the phase boundary instead of at warp completion, so the
// partner warp overlaps with the entire tail.
var EpilogueMicro = &Spec{
	Name: "epilogue", Suite: "gpushare", Kernel: "epilogue_micro",
	Set: Set1, BlockDim: 256, RegsPerThread: 48,
	Build: buildEpilogueMicro,
}

func init() { extras = append(extras, EpilogueMicro) }

const (
	epiSharedIters = 8
	epiTailIters   = 48
	epiStride      = 4096 // bytes between successive tail loads
)

func buildEpilogueMicro(scale int) *Instance {
	grid := 84 * scale
	n := grid * 256

	b := kernel.NewBuilder("epilogue_micro", 256)
	b.Params(1).SetRegs(48)
	// With 48 registers at t=0.1 the private pool is r0..r3; the shared
	// phase uses r20+ and the tail only r0..r3.
	const (
		rGid, rOut, rAcc = 0, 1, 2
		rShA, rShB, rShI = 20, 24, 28
		rT               = 3
	)
	emitGid(b, rGid)
	b.LdParam(rOut, 0)
	b.MovI(rAcc, 0)
	// Touch the tail's scratch register before any shared register so
	// the unroll pass (first-use renumbering) keeps all four tail
	// registers inside the private pool.
	b.MovI(rT, 0)
	// Phase 1: a short loop through shared registers.
	b.MovI(rShI, 0)
	b.MovI(rShA, 3)
	b.Label("shared")
	b.IMad(rShB, isa.Reg(rShA), isa.Imm(5), isa.Reg(rGid))
	b.And(rShA, isa.Reg(rShB), isa.Imm(0xffff))
	b.IAdd(rAcc, isa.Reg(rAcc), isa.Reg(rShA))
	b.IAdd(rShI, isa.Reg(rShI), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rShI), isa.Imm(epiSharedIters))
	b.BraIf(0, false, "shared", "tail")
	b.Label("tail")
	// Finish every shared-register use here: the walk address is
	// computed through rShB, then rGid is recycled as the tail counter.
	b.Shl(rShB, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rOut, isa.Reg(rOut), isa.Reg(rShB))
	b.MovI(rGid, 0)
	// Phase 2: a long memory-bound tail that provably never touches
	// r4..r47 again — live-range analysis releases the pair lock at its
	// head, letting the partner warp overlap with all of it.
	b.Label("loop")
	b.LdG(rT, isa.Reg(rOut), 0)
	b.IAdd(rAcc, isa.Reg(rAcc), isa.Reg(rT))
	b.Xor(rAcc, isa.Reg(rAcc), isa.Imm(0x5a5a))
	b.IAdd(rOut, isa.Reg(rOut), isa.Imm(epiStride))
	b.IAdd(rGid, isa.Reg(rGid), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rGid), isa.Imm(epiTailIters))
	b.BraIf(0, false, "loop", "fin")
	b.Label("fin")
	// The final store lands past every thread's read walk (offset 4n),
	// so no thread's tail load can observe another thread's result.
	b.StG(isa.Reg(rOut), int32(4*n), isa.Reg(rAcc))
	b.Exit()
	k := b.MustBuild()

	// The tail walks one buffer (element gid*4 + i*stride) and stores 4n
	// bytes past its final position; size the buffer for the last store.
	bufWords := 2*n + epiTailIters*epiStride/4 + 64
	init := make([]uint32, bufWords)
	var outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(163)
			for i := range init {
				init[i] = uint32(rng.next()) & 0xffff
			}
			outAddr = m.Alloc(4 * bufWords)
			m.WriteWords(outAddr, init)
			launch.Params = []uint32{outAddr}
		},
		Check: func(m *mem.Global) error {
			for t := 0; t < n; t += 131 {
				var acc, shA uint32 = 0, 3
				for i := 0; i < epiSharedIters; i++ {
					shB := shA*5 + uint32(t)
					shA = shB & 0xffff
					acc += shA
				}
				addr := outAddr + uint32(4*t)
				for i := 0; i < epiTailIters; i++ {
					acc += init[(addr-outAddr)/4]
					acc ^= 0x5a5a
					addr += epiStride
				}
				if got := m.Load32(addr + uint32(4*n)); got != acc {
					return fmt.Errorf("epilogue out[%d] = %#x, want %#x", t, got, acc)
				}
			}
			return nil
		},
	}
}
