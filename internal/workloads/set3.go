package workloads

import (
	"fmt"

	"gpushare/internal/isa"
	"gpushare/internal/kernel"
	"gpushare/internal/mem"
)

// Set-3: benchmarks limited by the maximum resident threads or blocks
// rather than by registers or scratchpad (Table IV). Under resource
// sharing these launch no extra blocks, so every block runs unshared —
// the paper uses them to show OWF degenerates gracefully (Fig. 12).

// Backprop2 is the bpnn_layerforward_CUDA proxy: stage inputs to
// scratchpad, barrier, tree reduction, weighted store. 256 threads and a
// small footprint everywhere: the 1536-thread cap limits it to 6 blocks.
var Backprop2 = register(&Spec{
	Name: "backprop2", Suite: "RODINIA", Kernel: "bpnn_layerforward_CUDA",
	Set: Set3, BlockDim: 256, RegsPerThread: 16, SmemPerBlock: 1088,
	Build: buildBackprop2,
})

func buildBackprop2(scale int) *Instance {
	grid := 84 * scale
	n := grid * 256

	b := kernel.NewBuilder("bpnn_layerforward_CUDA", 256)
	b.Params(2).SetSmem(1088).SetRegs(16)
	const (
		rTid, rGid, rIn, rOut = 10, 11, 12, 13
		rA, rV, rT, rP, rHalf = 0, 1, 2, 3, 4
	)
	b.Mov(rTid, isa.Sreg(isa.SrTid))
	emitGid(b, rGid)
	b.LdParam(rIn, 0)
	b.LdParam(rOut, 1)
	b.Shl(rA, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rIn))
	b.LdG(rV, isa.Reg(rA), 0)
	b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
	b.StS(isa.Reg(rT), 0, isa.Reg(rV))
	b.Bar()
	// Tree reduction over the staged tile (half = 128 .. 1).
	for half := 128; half >= 1; half /= 2 {
		b.MovI(rHalf, int32(half))
		b.Setp(isa.CmpLT, 0, isa.Reg(rTid), isa.Reg(rHalf))
		b.Guard(0, false)
		b.IAdd(rT, isa.Reg(rTid), isa.Reg(rHalf))
		b.Guard(0, false)
		b.Shl(rT, isa.Reg(rT), isa.Imm(2))
		b.Guard(0, false)
		b.LdS(rP, isa.Reg(rT), 0)
		b.Guard(0, false)
		b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
		b.Guard(0, false)
		b.LdS(rV, isa.Reg(rT), 0)
		b.Guard(0, false)
		b.FAdd(rV, isa.Reg(rV), isa.Reg(rP))
		b.Guard(0, false)
		b.StS(isa.Reg(rT), 0, isa.Reg(rV))
		b.Bar()
	}
	// out[gid] = own value * block sum
	b.Shl(rT, isa.Reg(rTid), isa.Imm(2))
	b.LdS(rV, isa.Reg(rT), 0)
	b.MovI(rT, 0)
	b.LdS(rP, isa.Reg(rT), 0) // block sum at word 0
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.FMul(rV, isa.Reg(rV), isa.Reg(rP))
	b.StG(isa.Reg(rT), 0, isa.Reg(rV))
	b.Exit()
	k := b.MustBuild()

	in := make([]float32, n)
	var inAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(139)
			for i := range in {
				in[i] = rng.nextFloat()
			}
			inAddr = m.Alloc(4 * n)
			outAddr = m.Alloc(4 * n)
			m.WriteFloats(inAddr, in)
			launch.Params = []uint32{inAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			ref := make([]float32, 256)
			for blk := 0; blk < grid; blk += 9 {
				copy(ref, in[blk*256:(blk+1)*256])
				for half := 128; half >= 1; half /= 2 {
					for tid := 0; tid < half; tid++ {
						ref[tid] = ref[tid] + ref[tid+half]
					}
				}
				// The kernel multiplies each thread's post-reduction
				// scratchpad value by the block sum at word 0.
				for tid := 0; tid < 256; tid += 31 {
					want := f32bits(ref[tid] * ref[0])
					gid := blk*256 + tid
					if got := m.Load32(outAddr + uint32(4*gid)); got != want {
						return fmt.Errorf("backprop2 out[%d] = %#x, want %#x", gid, got, want)
					}
				}
			}
			return nil
		},
	}
}

// BFS is the Kernel (breadth-first step) proxy: each thread reads its
// node's edge window and relaxes neighbour distances. 512 threads/block
// and a tiny register footprint: the thread cap limits it to 3 blocks.
var BFS = register(&Spec{
	Name: "BFS", Suite: "GPGPU-Sim", Kernel: "Kernel",
	Set: Set3, BlockDim: 512, RegsPerThread: 12,
	Build: buildBFS,
})

const bfsDegree = 4

func buildBFS(scale int) *Instance {
	grid := 42 * scale
	n := grid * 512

	b := kernel.NewBuilder("Kernel", 512)
	b.Params(3).SetRegs(12)
	const (
		rGid, rEdges, rDist, rOut = 8, 9, 10, 11
		rA, rE, rD, rT, rBest     = 0, 1, 2, 3, 4
	)
	emitGid(b, rGid)
	b.LdParam(rEdges, 0)
	b.LdParam(rDist, 1)
	b.LdParam(rOut, 2)
	// best = dist[gid]
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rDist), isa.Reg(rT))
	b.LdG(rBest, isa.Reg(rA), 0)
	// Relax over the node's edge window.
	b.IMul(rA, isa.Reg(rGid), isa.Imm(bfsDegree*4))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rEdges))
	for e := 0; e < bfsDegree; e++ {
		b.LdG(rE, isa.Reg(rA), int32(4*e)) // neighbour id
		b.Shl(rE, isa.Reg(rE), isa.Imm(2))
		b.IAdd(rE, isa.Reg(rE), isa.Reg(rDist))
		b.LdG(rD, isa.Reg(rE), 0) // neighbour distance
		b.IAdd(rD, isa.Reg(rD), isa.Imm(1))
		b.IMin(rBest, isa.Reg(rBest), isa.Reg(rD))
	}
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rBest))
	b.Exit()
	k := b.MustBuild()

	edges := make([]uint32, n*bfsDegree)
	dist := make([]uint32, n)
	var eAddr, dAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(149)
			for i := range edges {
				edges[i] = rng.nextN(n)
			}
			for i := range dist {
				dist[i] = rng.nextN(64)
			}
			eAddr = m.Alloc(4 * len(edges))
			dAddr = m.Alloc(4 * n)
			outAddr = m.Alloc(4 * n)
			m.WriteWords(eAddr, edges)
			m.WriteWords(dAddr, dist)
			launch.Params = []uint32{eAddr, dAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for t := 0; t < n; t += 97 {
				best := int32(dist[t])
				for e := 0; e < bfsDegree; e++ {
					nb := edges[t*bfsDegree+e]
					if d := int32(dist[nb]) + 1; d < best {
						best = d
					}
				}
				if got := m.Load32(outAddr + uint32(4*t)); got != uint32(best) {
					return fmt.Errorf("BFS out[%d] = %d, want %d", t, got, best)
				}
			}
			return nil
		},
	}
}

// Gaussian is the FAN2 proxy: one Gaussian-elimination row update with
// 64-thread blocks — the 8-blocks-per-SM cap binds first.
var Gaussian = register(&Spec{
	Name: "gaussian", Suite: "RODINIA", Kernel: "Fan2",
	Set: Set3, BlockDim: 64, RegsPerThread: 16,
	Build: buildGaussian,
})

const gaussCols = 16

func buildGaussian(scale int) *Instance {
	grid := 112 * scale
	n := grid * 64

	b := kernel.NewBuilder("Fan2", 64)
	b.Params(4).SetRegs(16)
	const (
		rGid, rMat, rMul, rOut, rPiv = 10, 11, 12, 13, 14
		rA, rM, rV, rT, rJ, rRow     = 0, 1, 2, 3, 4, 5
	)
	emitGid(b, rGid)
	b.LdParam(rMat, 0)
	b.LdParam(rMul, 1)
	b.LdParam(rOut, 2)
	b.LdParam(rPiv, 3)
	// m = multipliers[gid]
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rMul), isa.Reg(rT))
	b.LdG(rM, isa.Reg(rA), 0)
	// The matrix is stored column-major (mat[j*n + gid]) so lanes
	// coalesce: base = mat + gid*4, stride per column = n*4.
	b.IAdd(rRow, isa.Reg(rMat), isa.Reg(rT))
	const rStride = 15
	emitTotalThreads(b, rStride)
	b.Shl(rStride, isa.Reg(rStride), isa.Imm(2))
	b.MovI(rJ, 0)
	b.Label("col")
	b.LdG(rV, isa.Reg(rRow), 0)
	// v = v - m * pivot[j]; the pivot row is a read-only broadcast
	b.Shl(rT, isa.Reg(rJ), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rPiv), isa.Reg(rT))
	b.LdG(rT, isa.Reg(rT), 0)
	b.FMul(rT, isa.Reg(rT), isa.Reg(rM))
	b.FSub(rV, isa.Reg(rV), isa.Reg(rT))
	b.StG(isa.Reg(rRow), 0, isa.Reg(rV))
	b.IAdd(rRow, isa.Reg(rRow), isa.Reg(rStride))
	b.IAdd(rJ, isa.Reg(rJ), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rJ), isa.Imm(gaussCols))
	b.BraIf(0, false, "col", "fin")
	b.Label("fin")
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rV))
	b.Exit()
	k := b.MustBuild()

	mat := make([]float32, n*gaussCols)
	mul := make([]float32, n)
	piv := make([]float32, gaussCols)
	var matAddr, mulAddr, outAddr, pivAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(151)
			for i := range mat {
				mat[i] = rng.nextFloat()
			}
			for i := range mul {
				mul[i] = rng.nextFloat()
			}
			for i := range piv {
				piv[i] = rng.nextFloat() + 0.5
			}
			matAddr = m.Alloc(4 * len(mat))
			mulAddr = m.Alloc(4 * n)
			outAddr = m.Alloc(4 * n)
			pivAddr = m.Alloc(4 * gaussCols)
			m.WriteFloats(matAddr, mat)
			m.WriteFloats(mulAddr, mul)
			m.WriteFloats(pivAddr, piv)
			launch.Params = []uint32{matAddr, mulAddr, outAddr, pivAddr}
		},
		Check: func(m *mem.Global) error {
			for t := 0; t < n; t += 61 {
				mv := mul[t]
				var last float32
				for j := 0; j < gaussCols; j++ {
					want := mat[j*n+t] - piv[j]*mv
					got := mem.F32FromBits(m.Load32(matAddr + uint32(4*(j*n+t))))
					if got != want {
						return fmt.Errorf("gaussian mat[%d][%d] = %v, want %v", t, j, got, want)
					}
					last = want
				}
				if got := mem.F32FromBits(m.Load32(outAddr + uint32(4*t))); got != last {
					return fmt.Errorf("gaussian out[%d] = %v, want %v", t, got, last)
				}
			}
			return nil
		},
	}
}

// NN is the executeSecondLayer proxy: a small dense neural-network layer;
// 128-thread blocks, so the 8-block cap binds.
var NN = register(&Spec{
	Name: "NN", Suite: "GPGPU-Sim", Kernel: "executeSecondLayer",
	Set: Set3, BlockDim: 128, RegsPerThread: 20,
	Build: buildNN,
})

const nnWeights = 32

func buildNN(scale int) *Instance {
	grid := 112 * scale
	n := grid * 128

	b := kernel.NewBuilder("executeSecondLayer", 128)
	b.Params(3).SetRegs(20)
	const (
		rGid, rW, rIn, rOut        = 14, 15, 16, 17
		rA, rWv, rIv, rAcc, rJ, rT = 0, 1, 2, 3, 4, 5
		rStride                    = 18
	)
	emitGid(b, rGid)
	b.LdParam(rW, 0)
	b.LdParam(rIn, 1)
	b.LdParam(rOut, 2)
	// Weights are stored column-major (w[j*threads + gid]) so the loads
	// coalesce; inputs are per-block broadcasts.
	b.Shl(rA, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rW, isa.Reg(rW), isa.Reg(rA))
	emitTotalThreads(b, rStride)
	b.Shl(rStride, isa.Reg(rStride), isa.Imm(2))
	b.Mov(rT, isa.Sreg(isa.SrCtaid))
	b.IMul(rT, isa.Reg(rT), isa.Imm(nnWeights*4))
	b.IAdd(rIn, isa.Reg(rIn), isa.Reg(rT))
	b.MovF(rAcc, 0)
	b.MovI(rJ, 0)
	b.Label("dot")
	b.LdG(rWv, isa.Reg(rW), 0)
	b.IAdd(rW, isa.Reg(rW), isa.Reg(rStride))
	b.Shl(rT, isa.Reg(rJ), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rIn), isa.Reg(rT))
	b.LdG(rIv, isa.Reg(rA), 0)
	b.FFma(rAcc, isa.Reg(rWv), isa.Reg(rIv), isa.Reg(rAcc))
	b.IAdd(rJ, isa.Reg(rJ), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rJ), isa.Imm(nnWeights))
	b.BraIf(0, false, "dot", "fin")
	b.Label("fin")
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rAcc))
	b.Exit()
	k := b.MustBuild()

	w := make([]float32, n*nnWeights)
	in := make([]float32, grid*nnWeights)
	var wAddr, inAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(157)
			for i := range w {
				w[i] = rng.nextFloat() - 0.5
			}
			for i := range in {
				in[i] = rng.nextFloat()
			}
			wAddr = m.Alloc(4 * len(w))
			inAddr = m.Alloc(4 * len(in))
			outAddr = m.Alloc(4 * n)
			m.WriteFloats(wAddr, w)
			m.WriteFloats(inAddr, in)
			launch.Params = []uint32{wAddr, inAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for t := 0; t < n; t += 89 {
				blk := t / 128
				var acc float32
				for j := 0; j < nnWeights; j++ {
					acc = w[j*n+t]*in[blk*nnWeights+j] + acc
				}
				if got := m.Load32(outAddr + uint32(4*t)); got != f32bits(acc) {
					return fmt.Errorf("NN out[%d] = %#x, want %#x", t, got, f32bits(acc))
				}
			}
			return nil
		},
	}
}
