package workloads

import (
	"fmt"

	"gpushare/internal/isa"
	"gpushare/internal/kernel"
	"gpushare/internal/mem"
)

// MUM is the mummergpuKernel proxy: a pointer chase through a suffix-
// tree-like node array. Each warp's queries walk one 4KB subtree region
// with heavily uncoalesced lane addresses, so a warp's region becomes
// L1-resident only when the scheduler runs few warps greedily — LRR
// round-robin thrashes it, which is why the paper's most memory-bound
// Set-1 application gains most from OWF + dynamic warp execution
// (+24.1%). 256 threads/block, 28 registers/thread.
var MUM = register(&Spec{
	Name: "MUM", Suite: "RODINIA", Kernel: "mummergpuKernel",
	Set: Set1, BlockDim: 256, RegsPerThread: 28,
	Build: buildMUM,
})

const (
	mumRegion = 1024    // entries per warp subtree region (4KB)
	mumNodes  = 1 << 18 // total node entries (1MB)
	mumSteps  = 10
)

func buildMUM(scale int) *Instance {
	grid := 252 * scale
	threads := grid * 256

	b := kernel.NewBuilder("mummergpuKernel", 256)
	b.Params(2).SetRegs(28)
	const (
		rGid, rNodes, rOut     = 22, 23, 24
		rCur, rSum, rI, rA, rT = 0, 1, 2, 3, 4
	)
	emitGid(b, rGid)
	b.LdParam(rNodes, 0)
	b.LdParam(rOut, 1)
	// Region base: each warp owns a 4KB slice of the node pool.
	const rRegion = 5
	b.Shr(rRegion, isa.Reg(rGid), isa.Imm(5))
	b.IMul(rRegion, isa.Reg(rRegion), isa.Imm(-1640531527)) // scatter warp regions
	b.And(rRegion, isa.Reg(rRegion), isa.Imm(mumNodes/mumRegion-1))
	b.IMul(rRegion, isa.Reg(rRegion), isa.Imm(mumRegion))
	// cur = lane-scattered offset within the region
	b.IMul(rCur, isa.Reg(rGid), isa.Imm(-1640531527))
	b.And(rCur, isa.Reg(rCur), isa.Imm(mumRegion-1))
	b.MovI(rSum, 0)
	b.MovI(rI, 0)
	b.Label("chase")
	b.IAdd(rA, isa.Reg(rCur), isa.Reg(rRegion))
	b.Shl(rA, isa.Reg(rA), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rNodes))
	b.LdG(rCur, isa.Reg(rA), 0)
	b.IAdd(rSum, isa.Reg(rSum), isa.Reg(rCur))
	b.And(rCur, isa.Reg(rCur), isa.Imm(mumRegion-1))
	b.Shr(rT, isa.Reg(rSum), isa.Imm(5))
	b.Xor(rSum, isa.Reg(rSum), isa.Reg(rT))
	b.IAdd(rI, isa.Reg(rI), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rI), isa.Imm(mumSteps))
	b.BraIf(0, false, "chase", "done")
	b.Label("done")
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rSum))
	b.Exit()
	k := b.MustBuild()

	nodes := make([]uint32, mumNodes)
	var nodesAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(41)
			for i := range nodes {
				nodes[i] = uint32(rng.next())
			}
			nodesAddr = m.Alloc(4 * mumNodes)
			outAddr = m.Alloc(4 * threads)
			m.WriteWords(nodesAddr, nodes)
			launch.Params = []uint32{nodesAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for t := 0; t < threads; t += 199 {
				region := (((uint32(t) >> 5) * 2654435769) & (mumNodes/mumRegion - 1)) * mumRegion
				cur := (uint32(t) * 2654435769) & (mumRegion - 1)
				var sum uint32
				for i := 0; i < mumSteps; i++ {
					cur = nodes[region+cur]
					sum += cur
					sum ^= sum >> 5
					cur &= mumRegion - 1
				}
				if got := m.Load32(outAddr + uint32(4*t)); got != sum {
					return fmt.Errorf("MUM out[%d] = %#x, want %#x", t, got, sum)
				}
			}
			return nil
		},
	}
}

// MRIQ is the ComputeQ_GPU proxy: each thread accumulates phase
// contributions from a per-block k-space table that is re-read twice.
// Five resident blocks' tables (15KB) fit the 16KB L1; the sixth block
// launched under sharing overflows it, reproducing the paper's slight
// mri-q slowdown. 256 threads/block, 24 registers/thread.
var MRIQ = register(&Spec{
	Name: "mri-q", Suite: "PARBOIL", Kernel: "ComputeQ_GPU",
	Set: Set1, BlockDim: 256, RegsPerThread: 24,
	Build: buildMRIQ,
})

const (
	mriqTableWords = 704 // 2816B per block: 5 tables fit the 128-line L1, 6 do not
	mriqIters      = 88  // stride-8 sweep touches every line of the table once
	mriqStride     = 8
)

func buildMRIQ(scale int) *Instance {
	grid := 252 * scale
	threads := grid * 256
	tables := 84 + 14 // tables cycle per ctaid so co-resident blocks differ

	b := kernel.NewBuilder("ComputeQ_GPU", 256)
	b.Params(3).SetRegs(24)
	const (
		rGid, rTab, rOut, rX          = 18, 19, 20, 21
		rAcc, rJ, rK, rA, rPh, rT, rP = 0, 1, 2, 3, 4, 5, 6
	)
	emitGid(b, rGid)
	b.LdParam(rTab, 0)
	b.LdParam(rOut, 1)
	// x = xs[gid]
	b.LdParam(rX, 2)
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rX, isa.Reg(rX), isa.Reg(rT))
	b.LdG(rX, isa.Reg(rX), 0)
	// table base for this block: tab + (ctaid % tables)*tableWords*4
	b.Mov(rT, isa.Sreg(isa.SrCtaid))
	b.MovI(rA, int32(tables))
	b.Label("modloop") // t -= tables while t >= tables (cheap modulus)
	b.Setp(isa.CmpGE, 0, isa.Reg(rT), isa.Reg(rA))
	b.Guard(0, false)
	b.ISub(rT, isa.Reg(rT), isa.Reg(rA))
	b.Guard(0, false)
	b.Bra("modloop")
	b.IMad(rTab, isa.Reg(rT), isa.Imm(mriqTableWords*4), isa.Reg(rTab))
	b.MovF(rAcc, 0)
	b.MovI(rJ, 0)
	b.Label("iter")
	// k = table[(j*stride) mod tableWords] — a strided sweep that still
	// touches every cache line of the 3KB table.
	b.IMul(rA, isa.Reg(rJ), isa.Imm(mriqStride))
	b.Shl(rA, isa.Reg(rA), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rTab))
	b.LdG(rK, isa.Reg(rA), 0)
	// phase = sin(k*x)*0.5 + k  (one SFU op per iteration, like the
	// sin/cos pairs of the real mri-q inner loop)
	b.FMul(rPh, isa.Reg(rK), isa.Reg(rX))
	b.FSin(rPh, isa.Reg(rPh))
	b.FFma(rP, isa.Reg(rPh), isa.ImmF(0.5), isa.Reg(rK))
	b.FAdd(rAcc, isa.Reg(rAcc), isa.Reg(rP))
	b.IAdd(rJ, isa.Reg(rJ), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rJ), isa.Imm(mriqIters))
	b.BraIf(0, false, "iter", "fin")
	b.Label("fin")
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rAcc))
	b.Exit()
	k := b.MustBuild()

	table := make([]float32, tables*mriqTableWords)
	xs := make([]float32, threads)
	var tabAddr, outAddr, xAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(53)
			for i := range table {
				table[i] = rng.nextFloat() * 2
			}
			for i := range xs {
				xs[i] = rng.nextFloat()
			}
			tabAddr = m.Alloc(4 * len(table))
			outAddr = m.Alloc(4 * threads)
			xAddr = m.Alloc(4 * threads)
			m.WriteFloats(tabAddr, table)
			m.WriteFloats(xAddr, xs)
			launch.Params = []uint32{tabAddr, outAddr, xAddr}
		},
		// No exact host check: FSIN accumulation over 1536 iterations is
		// exercised by the executor unit tests instead; here we verify
		// outputs were produced.
		Check: func(m *mem.Global) error {
			zero := 0
			for t := 0; t < threads; t += 173 {
				if m.Load32(outAddr+uint32(4*t)) == 0 {
					zero++
				}
			}
			if zero > 2 {
				return fmt.Errorf("mri-q: %d spot-checked outputs are zero", zero)
			}
			return nil
		},
	}
}

// LIB is the Pathcalc_Portfolio_KernelGPU proxy: each block makes four
// passes over a 12KB per-block path buffer. One SM's resident blocks
// overflow its L1 but the whole GPU's baseline working set (4 blocks/SM
// x 14 SMs x 12KB = 672KB) fits the 768KB L2 — doubling the blocks via
// sharing thrashes the L2, which is why the paper sees only +0.84%.
// 192 threads/block, 36 registers/thread. Register numbering is already
// first-use ordered, so the unroll pass is a no-op (as §VI-B observes).
var LIB = register(&Spec{
	Name: "LIB", Suite: "RODINIA", Kernel: "Pathcalc_Portfolio_KernelGPU",
	Set: Set1, BlockDim: 192, RegsPerThread: 36,
	Build: buildLIB,
})

const (
	libWordsPerBlock = 3072 // 12KB
	libPasses        = 2
)

func buildLIB(scale int) *Instance {
	grid := 336 * scale

	b := kernel.NewBuilder("Pathcalc_Portfolio_KernelGPU", 192)
	b.Params(2).SetRegs(36)
	const (
		rTid, rBase, rOut, rAcc, rP = 0, 1, 2, 3, 4
		rJ, rA, rV, rT, rGid        = 5, 6, 7, 8, 9
	)
	b.Mov(rTid, isa.Sreg(isa.SrTid))
	b.LdParam(rBase, 0)
	b.LdParam(rOut, 1)
	// base += ctaid * wordsPerBlock * 4
	b.Mov(rT, isa.Sreg(isa.SrCtaid))
	b.IMad(rBase, isa.Reg(rT), isa.Imm(libWordsPerBlock*4), isa.Reg(rBase))
	b.MovF(rAcc, 0)
	b.MovI(rP, 0)
	b.Label("pass")
	b.Mov(rJ, isa.Reg(rTid))
	b.Label("elem")
	b.Shl(rA, isa.Reg(rJ), isa.Imm(2))
	b.IAdd(rA, isa.Reg(rA), isa.Reg(rBase))
	b.LdG(rV, isa.Reg(rA), 0)
	b.FFma(rAcc, isa.Reg(rV), isa.ImmF(1.0009), isa.Reg(rAcc))
	b.FMul(rAcc, isa.Reg(rAcc), isa.ImmF(0.9999))
	b.IAdd(rJ, isa.Reg(rJ), isa.Imm(192))
	b.Setp(isa.CmpLT, 0, isa.Reg(rJ), isa.Imm(libWordsPerBlock))
	b.BraIf(0, false, "elem", "endpass")
	b.Label("endpass")
	b.IAdd(rP, isa.Reg(rP), isa.Imm(1))
	b.Setp(isa.CmpLT, 0, isa.Reg(rP), isa.Imm(libPasses))
	b.BraIf(0, false, "pass", "fin")
	b.Label("fin")
	emitGid(b, rGid)
	b.Shl(rT, isa.Reg(rGid), isa.Imm(2))
	b.IAdd(rT, isa.Reg(rOut), isa.Reg(rT))
	b.StG(isa.Reg(rT), 0, isa.Reg(rAcc))
	b.Exit()
	k := b.MustBuild()

	paths := make([]float32, grid*libWordsPerBlock)
	var pathAddr, outAddr uint32
	launch := &kernel.Launch{Kernel: k, GridDim: grid}
	return &Instance{
		Launch: launch,
		Setup: func(m *mem.Global) {
			rng := splitmix64(61)
			for i := range paths {
				paths[i] = rng.nextFloat()
			}
			pathAddr = m.Alloc(4 * len(paths))
			outAddr = m.Alloc(4 * grid * 192)
			m.WriteFloats(pathAddr, paths)
			launch.Params = []uint32{pathAddr, outAddr}
		},
		Check: func(m *mem.Global) error {
			for blk := 0; blk < grid; blk += 17 {
				for tid := 0; tid < 192; tid += 53 {
					var acc float32
					for p := 0; p < libPasses; p++ {
						for j := tid; j < libWordsPerBlock; j += 192 {
							v := paths[blk*libWordsPerBlock+j]
							acc = v*1.0009 + acc
							acc *= 0.9999
						}
					}
					gid := blk*192 + tid
					if got := m.Load32(outAddr + uint32(4*gid)); got != f32bits(acc) {
						return fmt.Errorf("LIB out[%d] = %#x, want %#x", gid, got, f32bits(acc))
					}
				}
			}
			return nil
		},
	}
}
