package workloads_test

import (
	"testing"

	"gpushare/internal/config"
	"gpushare/internal/gpu"
	"gpushare/internal/workloads"
)

// paperOccupancy lists the paper's resident-block counts: baseline
// (Fig. 1a/1c and the 0% columns of Tables VI/VIII) and at 90% sharing
// (Fig. 8a/8b and the 90% columns of Tables VI/VIII).
var paperOccupancy = map[string]struct{ base, shared int }{
	"backprop": {5, 6}, "b+tree": {2, 3}, "hotspot": {3, 6}, "LIB": {4, 8},
	"MUM": {4, 6}, "mri-q": {5, 6}, "sgemm": {5, 8}, "stencil": {2, 3},
	"CONV1": {6, 8}, "CONV2": {3, 4}, "lavaMD": {2, 4}, "NW1": {7, 8},
	"NW2": {7, 8}, "SRAD1": {2, 4}, "SRAD2": {3, 5},
	"backprop2": {6, 6}, "BFS": {3, 3}, "gaussian": {8, 8}, "NN": {8, 8},
}

func sharingModeFor(s *workloads.Spec) config.SharingMode {
	switch s.Set {
	case workloads.Set1:
		return config.ShareRegisters
	case workloads.Set2:
		return config.ShareScratchpad
	default:
		// Set-3 apps are evaluated under both modes in the paper; either
		// way no extra blocks launch. Use register sharing here.
		return config.ShareRegisters
	}
}

func TestRegistryComplete(t *testing.T) {
	if got := len(workloads.All()); got != 19 {
		t.Fatalf("registry has %d workloads, want 19", got)
	}
	if got := len(workloads.BySet(workloads.Set1)); got != 8 {
		t.Errorf("Set-1 has %d workloads, want 8", got)
	}
	if got := len(workloads.BySet(workloads.Set2)); got != 7 {
		t.Errorf("Set-2 has %d workloads, want 7", got)
	}
	if got := len(workloads.BySet(workloads.Set3)); got != 4 {
		t.Errorf("Set-3 has %d workloads, want 4", got)
	}
	for _, s := range workloads.All() {
		if _, ok := paperOccupancy[s.Name]; !ok {
			t.Errorf("workload %q missing from paper expectations", s.Name)
		}
	}
}

// TestFootprintsMatchSpecs verifies each built kernel carries exactly the
// resource footprint its workloads.Spec (and the paper's tables) declares.
func TestFootprintsMatchSpecs(t *testing.T) {
	for _, s := range workloads.All() {
		inst := s.Build(1)
		k := inst.Launch.Kernel
		if k.BlockDim != s.BlockDim {
			t.Errorf("%s: BlockDim = %d, want %d", s.Name, k.BlockDim, s.BlockDim)
		}
		if k.RegsPerThread != s.RegsPerThread {
			t.Errorf("%s: RegsPerThread = %d, want %d", s.Name, k.RegsPerThread, s.RegsPerThread)
		}
		if k.SmemPerBlock != s.SmemPerBlock {
			t.Errorf("%s: SmemPerBlock = %d, want %d", s.Name, k.SmemPerBlock, s.SmemPerBlock)
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s: kernel invalid: %v", s.Name, err)
		}
	}
}

// TestOccupancyMatchesPaper checks baseline and 90%-sharing resident
// block counts against Fig. 1 / Fig. 8 / Tables VI and VIII.
func TestOccupancyMatchesPaper(t *testing.T) {
	for _, s := range workloads.All() {
		want := paperOccupancy[s.Name]
		inst := s.Build(1)

		base := config.Default()
		sim := gpu.MustNew(base)
		if got := sim.Occupancy(inst.Launch.Kernel).Baseline; got != want.base {
			t.Errorf("%s: baseline blocks = %d, paper says %d", s.Name, got, want.base)
		}

		shared := config.Default()
		shared.Sharing = sharingModeFor(s)
		shared.T = 0.1
		sim2 := gpu.MustNew(shared)
		if got := sim2.Occupancy(inst.Launch.Kernel).Max; got != want.shared {
			t.Errorf("%s: 90%%-sharing blocks = %d, paper says %d", s.Name, got, want.shared)
		}
	}
}

// TestWorkloadsRunAndVerify runs every workload end-to-end under the
// baseline configuration and validates its functional outputs.
func TestWorkloadsRunAndVerify(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			inst := s.Build(1)
			sim := gpu.MustNew(config.Default())
			inst.Setup(sim.Mem)
			g, err := sim.Run(inst.Launch)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if inst.Check != nil {
				if err := inst.Check(sim.Mem); err != nil {
					t.Fatalf("functional check: %v", err)
				}
			}
			if g.IPC() <= 0 || g.IPC() > 896 {
				t.Errorf("IPC = %.1f out of range (max 14 SMs x 2 x 32 = 896)", g.IPC())
			}
			t.Logf("%-10s cycles=%7d IPC=%6.1f stall%%=%4.1f idle%%=%4.1f L1miss=%4.1f%% L2miss=%4.1f%%",
				s.Name, g.Cycles, g.IPC(),
				float64(g.StallCycles())/float64(g.Cycles*14)*100,
				float64(g.IdleCycles())/float64(g.Cycles*14)*100,
				g.L1.MissRate()*100, g.L2.MissRate()*100)
		})
	}
}

// TestWorkloadsCorrectUnderSharing re-runs every workload with its
// sharing mode, OWF, unrolling, and dynamic warp execution enabled:
// outputs must stay correct.
func TestWorkloadsCorrectUnderSharing(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			inst := s.Build(1)
			cfg := config.Default()
			cfg.Sharing = sharingModeFor(s)
			cfg.T = 0.1
			cfg.Sched = config.SchedOWF
			if cfg.Sharing == config.ShareRegisters {
				cfg.UnrollRegs = true
				cfg.DynWarp = true
			}
			sim := gpu.MustNew(cfg)
			inst.Setup(sim.Mem)
			if _, err := sim.Run(inst.Launch); err != nil {
				t.Fatalf("run: %v", err)
			}
			if inst.Check != nil {
				if err := inst.Check(sim.Mem); err != nil {
					t.Fatalf("functional check under sharing: %v", err)
				}
			}
		})
	}
}

// TestEpilogueMicroWorkload covers the extension microbenchmark (not in
// the 19-entry registry): functional correctness under the baseline and
// under register sharing with early release.
func TestEpilogueMicroWorkload(t *testing.T) {
	for _, mode := range []string{"baseline", "early-release"} {
		cfg := config.Default()
		if mode == "early-release" {
			cfg.Sharing = config.ShareRegisters
			cfg.T = 0.1
			cfg.Sched = config.SchedOWF
			cfg.UnrollRegs = true
			cfg.EarlyRegRelease = true
		}
		sim := gpu.MustNew(cfg)
		inst := workloads.EpilogueMicro.Build(1)
		inst.Setup(sim.Mem)
		g, err := sim.Run(inst.Launch)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := inst.Check(sim.Mem); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if mode == "early-release" {
			var rel int64
			for i := range g.SMs {
				rel += g.SMs[i].EarlyRegRelease
			}
			if rel == 0 {
				t.Error("early releases never fired on the epilogue microbenchmark")
			}
		}
	}
}
