// Package fault provides deterministic fault injection for the
// simulator's invariant-checker tests. A Plan arms exactly one fault of
// one kind; the hardware models call Trip at each opportunity (every
// memory reply, every lease release, every barrier arrival) and the
// plan fires on the Nth one, recording where it struck. Because the
// simulator itself is deterministic, the same plan against the same
// workload always corrupts the same event, so tests can assert the
// precise detector that catches it.
//
// The package is a leaf (standard library only) so smcore, core, and
// mem can consult a plan without import cycles.
package fault

import (
	"fmt"
	"sync"
)

// Kind selects what to corrupt.
type Kind uint8

// Fault kinds.
const (
	None                 Kind = iota
	DropMemReply              // discard a memory reply at SM ejection: the load never completes
	CorruptLeaseRelease       // release a shared-register lease without fixing the active-lock count
	SkipBarrierArrival        // a warp parks at a barrier without being counted as arrived
	StaleSnapshot             // skip a warp-snapshot invalidation: the scheduler keeps ranking on stale state
	CorruptTenantCap          // skip a tenant's resource-cap release at block finish: the cap ledger leaks
	CrashAfterCheckpoint      // crash (panic) right after a checkpoint is durably written, before any journal commit
	TornCheckpoint            // truncate a checkpoint file after its atomic rename, then crash
	TornJournal               // write a truncated journal record, emulating a crash mid-append
	WorkerCrashMidJob         // a gserved worker dies abruptly (kill -9) while a dispatched job is running
	CrashAfterDispatch        // the gsched coordinator dies between dispatching a job to a worker and recording the ack
	HeartbeatBlackhole        // a network partition: the worker stays alive but every coordinator probe to it is dropped
	MissedWake                // a sleeping SM's wake cycle is pushed past its true horizon: the sleep skips live work
	MissedMemWake             // a memory partition's next-work cycle is pushed past its true horizon: the skip swallows live work
)

func (k Kind) String() string {
	switch k {
	case DropMemReply:
		return "drop-mem-reply"
	case CorruptLeaseRelease:
		return "corrupt-lease-release"
	case SkipBarrierArrival:
		return "skip-barrier-arrival"
	case StaleSnapshot:
		return "stale-snapshot"
	case CorruptTenantCap:
		return "corrupt-tenant-cap"
	case CrashAfterCheckpoint:
		return "crash-after-checkpoint"
	case TornCheckpoint:
		return "torn-checkpoint"
	case TornJournal:
		return "torn-journal"
	case WorkerCrashMidJob:
		return "worker-crash-mid-job"
	case CrashAfterDispatch:
		return "crash-after-dispatch"
	case HeartbeatBlackhole:
		return "heartbeat-blackhole"
	case MissedWake:
		return "missed-wake"
	case MissedMemWake:
		return "missed-mem-wake"
	}
	return "none"
}

// Plan arms one fault. The zero value (Kind None) never fires. Nth is
// the 1-based opportunity index to corrupt; 0 behaves as 1.
//
// Trip is safe for concurrent use — fleet crash points fire from
// dispatch and probe goroutines, not just the single-threaded cycle
// loop. The injection-record fields may be read directly once the run
// has settled; a concurrent observer should use Fired instead.
type Plan struct {
	Kind Kind
	Nth  int

	// Injection record, filled when the fault fires.
	Injected bool
	Cycle    int64
	SM       int
	Warp     int
	Detail   string

	mu   sync.Mutex
	seen int
}

// NewPlan derives a plan deterministically from a seed: the fault fires
// on opportunity 1 + seed mod spread. The same (kind, seed, workload)
// triple always corrupts the same event.
func NewPlan(kind Kind, seed uint64, spread int) *Plan {
	if spread <= 0 {
		spread = 1
	}
	// splitmix64 finalizer decorrelates adjacent seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &Plan{Kind: kind, Nth: 1 + int(z%uint64(spread))}
}

// Trip reports whether the fault fires at this opportunity. kind names
// the opportunity the caller is offering; non-matching kinds never
// fire. A nil plan never fires.
func (p *Plan) Trip(kind Kind, cycle int64, sm, warp int, detail string) bool {
	if p == nil || p.Kind != kind {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Injected {
		return false
	}
	p.seen++
	nth := p.Nth
	if nth <= 0 {
		nth = 1
	}
	if p.seen < nth {
		return false
	}
	p.Injected = true
	p.Cycle, p.SM, p.Warp, p.Detail = cycle, sm, warp, detail
	return true
}

// Fired reports whether the fault has been injected. Unlike reading
// Injected directly, it is safe while Trip may still be firing on
// other goroutines.
func (p *Plan) Fired() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Injected
}

// String describes the plan and, once fired, the injection record.
func (p *Plan) String() string {
	if p == nil || p.Kind == None {
		return "no fault"
	}
	s := fmt.Sprintf("%s on opportunity %d", p.Kind, p.Nth)
	if p.Injected {
		s += fmt.Sprintf(" (injected at cycle %d, SM %d, warp %d: %s)", p.Cycle, p.SM, p.Warp, p.Detail)
	}
	return s
}
