// Package fleet implements gsched: a fault-tolerant coordinator that
// shards simulation work across a fleet of gserved workers. It is the
// layer the ROADMAP's "heavy traffic" north star calls for — a single
// admission point with per-tenant weighted fair-share queues and
// priorities, dispatching to however many workers are alive right now —
// and robustness is its headline:
//
//   - Failure detection: workers hold a lease renewed by probes of
//     their /readyz (and by push heartbeats). A worker whose lease
//     expires is marked dead and its in-flight jobs are requeued. A
//     partitioned worker that is alive but unreachable looks identical
//     to a dead one — and that is safe, because dispatch is
//     at-least-once while *results* are at-most-once: jobs are
//     content-addressed, the first terminal result recorded wins, and a
//     duplicate execution produces byte-identical statistics by
//     simulator determinism.
//   - Preemption: a higher-priority arrival may preempt a running
//     lower-priority job. The coordinator cancels it on the worker
//     (which leaves the job's checkpoint trail intact — cancellation
//     means "stop computing here", not "forget the work"), requeues it,
//     and a later dispatch to any worker sharing the checkpoint
//     directory resumes from the trail instead of cycle 0.
//   - Crash tolerance: admissions are fsync'd to the same write-ahead
//     log machinery gserved uses (internal/wal) before they are
//     queueable. kill -9 of the coordinator replays every accepted,
//     unfinished job on restart; kill -9 of a worker is just a lease
//     expiry. Dispatch state is deliberately not journaled — on replay
//     everything pending is re-dispatched, and worker-side dedup by
//     content key makes the second dispatch either join the in-flight
//     run or return the cached result.
//   - Degraded mode: with no live workers the coordinator keeps
//     accepting (the journal makes that promise durable) and reports an
//     honest Retry-After instead of erroring.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpushare/internal/client"
	"gpushare/internal/config"
	"gpushare/internal/fault"
	"gpushare/internal/runner"
	"gpushare/internal/server"
	"gpushare/internal/wal"
	"gpushare/internal/workloads"
)

// Options configures a Coordinator. The zero value is usable: 3s
// leases probed every second, a 1024-deep queue, preemption on.
type Options struct {
	// LeaseTTL is how long a worker stays trusted after its last
	// successful probe or heartbeat (0 = 3s). Expiry marks it dead and
	// requeues its jobs.
	LeaseTTL time.Duration
	// ProbeInterval is the failure-detector sweep period (0 =
	// LeaseTTL/3). Each sweep probes every worker's /readyz.
	ProbeInterval time.Duration
	// PollInterval is how often a dispatched job is polled on its
	// worker (0 = 100ms).
	PollInterval time.Duration
	// QueueDepth bounds admitted-but-unfinished jobs (0 = 1024); beyond
	// it submissions are shed with 429.
	QueueDepth int
	// MaxDeadline caps client-requested job deadlines (0 = 10m).
	MaxDeadline time.Duration
	// NoPreemption disables checkpoint-based preemption: higher-priority
	// jobs then only jump the queue, never displace a running job.
	NoPreemption bool
	// Workers is the static worker set registered at startup, as gserved
	// base URLs. More can register at runtime via POST /v1/workers.
	Workers []string
	// Slots is the per-worker concurrent-dispatch cap for the static
	// Workers set (0 = 1).
	Slots int
	// JournalPath enables the write-ahead queue journal ("" disables):
	// admissions are fsync'd before dispatch, and a coordinator killed
	// outright replays unfinished jobs on the next start.
	JournalPath string
	// JournalFaults arms torn-append crash injection on the journal
	// (durability tests only).
	JournalFaults *fault.Plan
	// Faults arms fleet crash points (durability tests only):
	// CrashAfterDispatch hard-stops the coordinator between a worker
	// accepting a job and the ack being recorded; HeartbeatBlackhole
	// makes one worker's probes vanish while it stays alive.
	Faults *fault.Plan
	// NewClient builds the per-worker client (tests tune retries and
	// timeouts). nil = client.New with snappy probe-friendly settings.
	NewClient func(baseURL string) *client.Client
}

// fjob is one fleet job's coordinator-side state. Mutations are guarded
// by Coordinator.mu; done closes exactly once, when the job reaches a
// terminal state.
type fjob struct {
	key      string
	req      SubmitRequest
	tenant   string
	weight   int
	priority int
	seq      int64

	state  string
	worker string // current / last worker id
	res    server.JobStatus

	requeues    int
	preemptions int
	// preempting marks an in-flight dispatch the coordinator is
	// deliberately cancelling to make room for higher priority.
	preempting bool
	// notBefore delays re-dispatch after a dispatch-path failure so a
	// flapping worker cannot spin the scheduler.
	notBefore time.Time

	cancelDispatch context.CancelFunc
	done           chan struct{}
}

// worker is one registry entry. Mutations are guarded by
// Coordinator.mu.
type worker struct {
	id    string
	url   string
	state string
	slots int
	cl    *client.Client

	leaseExpiry time.Time
	inflight    map[string]*fjob
	// blackholed emulates a partition (HeartbeatBlackhole): the worker
	// answers probes, but the coordinator never sees them.
	blackholed bool
	// pinnedDrain marks an operator drain (POST /v1/workers/{id}/drain):
	// the probe loop must not promote the worker back to alive just
	// because it answers ready. Re-registering clears the pin.
	pinnedDrain bool

	dispatched int64
	completed  int64
	deaths     int64
}

// Coordinator is the gsched daemon core. Build with New, mount
// Handler, stop with Drain (graceful) or HardStop (crash emulation).
type Coordinator struct {
	opts Options
	mux  *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	workers  map[string]*worker
	jobs     map[string]*fjob
	q        *fairQueue
	seq      int64
	draining bool
	crashed  bool

	jl *wal.Log

	kick chan struct{}
	wg   sync.WaitGroup

	start time.Time

	accepted     atomic.Int64
	deduped      atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	requeues     atomic.Int64
	preemptions  atomic.Int64
	workerDeaths atomic.Int64
	replayed     atomic.Int64
	rejFull      atomic.Int64
}

// New builds the coordinator, registers the static worker set, replays
// the journal, and starts the scheduler and failure-detector loops.
func New(opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 3 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = opts.LeaseTTL / 3
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxDeadline <= 0 {
		opts.MaxDeadline = 10 * time.Minute
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.NewClient == nil {
		opts.NewClient = func(baseURL string) *client.Client {
			c := client.New(baseURL)
			// The dispatcher runs its own requeue logic; client-level
			// retries would fight it (and could resubmit a job the
			// coordinator just preempted).
			c.MaxRetries = 0
			c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
			return c
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:    opts,
		baseCtx: ctx,
		cancel:  cancel,
		workers: make(map[string]*worker),
		jobs:    make(map[string]*fjob),
		q:       newFairQueue(),
		kick:    make(chan struct{}, 1),
		start:   time.Now(),
	}
	c.routes()

	for _, url := range opts.Workers {
		c.addWorker(RegisterRequest{URL: url, Slots: opts.Slots})
	}

	var replay []wal.Record
	if opts.JournalPath != "" {
		jl, pending, err := wal.Open(opts.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
		jl.Faults = opts.JournalFaults
		c.jl = jl
		replay = pending
	}

	c.wg.Add(2)
	go c.schedulerLoop()
	go c.probeLoop()

	for _, rec := range replay {
		var req SubmitRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			// The journaled submission no longer decodes: it can never
			// run, retire it.
			c.jl.Done(rec.Key)
			continue
		}
		if _, _, err := c.submit(&req, true); err != nil {
			// No longer validates (e.g. a workload was removed): retire.
			c.jl.Done(rec.Key)
			continue
		}
		c.replayed.Add(1)
	}
	return c, nil
}

// buildJob normalizes a submission exactly as gserved does (scale
// default 1, config default Table I, validation) and returns the runner
// job plus its content-addressed key. The key computed here must equal
// the one the worker computes — both exclude daemon-side knobs — which
// is what makes at-least-once dispatch safe.
func buildJob(req *server.SubmitRequest) (runner.Job, string, error) {
	switch {
	case req.Tenancy != nil:
		if req.Workload != "" {
			return runner.Job{}, "", fmt.Errorf("workload and tenancy are mutually exclusive; name workloads inside the tenancy spec")
		}
		if err := req.Tenancy.Validate(); err != nil {
			return runner.Job{}, "", fmt.Errorf("invalid tenancy spec: %w", err)
		}
	case req.Workload == "":
		return runner.Job{}, "", fmt.Errorf("workload is required")
	default:
		if _, err := workloads.ByName(req.Workload); err != nil {
			return runner.Job{}, "", err
		}
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}
	cfg := config.Default()
	if req.Config != nil {
		cfg = *req.Config
	}
	if err := cfg.Validate(); err != nil {
		return runner.Job{}, "", fmt.Errorf("invalid config: %w", err)
	}
	rjob := runner.Job{Workload: req.Workload, Config: cfg, Scale: scale, Tenancy: req.Tenancy}
	key, err := rjob.Key()
	if err != nil {
		return runner.Job{}, "", err
	}
	return rjob, key, nil
}

// validateEnvelope checks the fleet scheduling fields.
func validateEnvelope(req *SubmitRequest) error {
	if req.Priority < 0 || req.Priority > maxPriority {
		return fmt.Errorf("priority %d out of range [0, %d]", req.Priority, maxPriority)
	}
	if req.Weight < 0 {
		return fmt.Errorf("weight %d must be >= 0", req.Weight)
	}
	return nil
}

// submit runs the admission state machine for one submission. replayed
// marks journal replay (already durable; skip the accept append).
// Returns the job, an HTTP status (200 dedup, 202 admitted, 429 shed),
// and an error for invalid submissions.
func (c *Coordinator) submit(req *SubmitRequest, replayed bool) (*fjob, int, error) {
	if err := validateEnvelope(req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	_, key, err := buildJob(&req.SubmitRequest)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	c.mu.Lock()
	if j, ok := c.jobs[key]; ok {
		c.mu.Unlock()
		c.deduped.Add(1)
		return j, http.StatusOK, nil
	}
	if c.draining {
		c.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("coordinator is draining; not admitting jobs")
	}
	if c.outstandingLocked() >= c.opts.QueueDepth {
		c.mu.Unlock()
		c.rejFull.Add(1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("admission queue is full")
	}
	c.seq++
	j := &fjob{
		key: key, req: *req, tenant: tenant, weight: req.Weight,
		priority: req.Priority, seq: c.seq,
		state: JobQueued, done: make(chan struct{}),
	}
	// The write-ahead rule: the admission is fsync'd before the job is
	// visible to the scheduler, so a crash between here and completion
	// always leaves a replayable record. A journal write failure only
	// degrades durability — the job is admitted regardless.
	if c.jl != nil && !replayed && !c.crashed {
		_ = c.jl.Accept(key, req)
	}
	c.jobs[key] = j
	c.q.push(j)
	c.mu.Unlock()
	c.accepted.Add(1)
	c.kickScheduler()
	return j, http.StatusAccepted, nil
}

// outstandingLocked counts non-terminal jobs (queued + dispatched).
func (c *Coordinator) outstandingLocked() int {
	n := 0
	for _, j := range c.jobs {
		if j.state == JobQueued || j.state == JobDispatched {
			n++
		}
	}
	return n
}

// kickScheduler nudges the scheduler loop without blocking.
func (c *Coordinator) kickScheduler() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// defaultWorkerID derives a path-safe worker id from a base URL: the
// host:port, with the scheme and any trailing slash stripped.
func defaultWorkerID(url string) string {
	id := url
	if i := strings.Index(id, "://"); i >= 0 {
		id = id[i+3:]
	}
	return strings.TrimSuffix(id, "/")
}

// addWorker registers (or updates) a worker entry.
func (c *Coordinator) addWorker(req RegisterRequest) *worker {
	id := req.ID
	if id == "" {
		id = defaultWorkerID(req.URL)
	}
	slots := req.Slots
	if slots <= 0 {
		slots = 1
	}
	c.mu.Lock()
	w, ok := c.workers[id]
	if !ok {
		w = &worker{id: id, inflight: make(map[string]*fjob)}
		c.workers[id] = w
	}
	w.url = req.URL
	w.slots = slots
	w.state = WorkerAlive
	w.pinnedDrain = false
	w.cl = c.opts.NewClient(req.URL)
	// A fresh registration gets a grace lease; the first probe sweep
	// confirms or expires it.
	w.leaseExpiry = time.Now().Add(c.opts.LeaseTTL)
	c.mu.Unlock()
	c.kickScheduler()
	return w
}

// liveWorkersLocked counts workers currently eligible for dispatch.
func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.state == WorkerAlive {
			n++
		}
	}
	return n
}

// status snapshots one job.
func (c *Coordinator) status(j *fjob) JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(j)
}

func (c *Coordinator) statusLocked(j *fjob) JobStatus {
	st := JobStatus{
		JobStatus: server.JobStatus{Key: j.key, State: j.state,
			Workload: j.req.Workload, Scale: j.req.Scale},
		Tenant: j.tenant, Priority: j.priority, Worker: j.worker,
		Requeues: j.requeues, Preemptions: j.preemptions,
	}
	switch j.state {
	case JobDone, JobFailed:
		st.JobStatus = j.res
		st.State = j.state
	case JobQueued:
		if c.liveWorkersLocked() == 0 {
			// Degraded mode: queued with no one to run it. The honest
			// hint is one lease TTL — the time for a worker to register
			// or come back.
			st.RetryAfterSec = int(c.opts.LeaseTTL/time.Second) + 1
		}
	}
	return st
}

// workerStatusLocked snapshots one registry entry.
func (c *Coordinator) workerStatusLocked(w *worker) WorkerStatus {
	return WorkerStatus{
		ID: w.id, URL: w.url, State: w.state, Slots: w.slots,
		InFlight:    len(w.inflight),
		LeaseMillis: time.Until(w.leaseExpiry).Milliseconds(),
		Dispatched:  w.dispatched, Completed: w.completed, Deaths: w.deaths,
	}
}

// Draining reports whether the coordinator stopped admitting.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Drain stops admission, waits for dispatched and queued jobs to reach
// terminal states (up to timeout), then stops the loops. Queued jobs
// that never ran stay pending in the journal for the next start.
func (c *Coordinator) Drain(timeout time.Duration) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := c.outstandingLocked()
		c.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.cancel()
	done := make(chan struct{})
	go func() { c.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("fleet: drain: loops still running after cancellation")
	}
	if c.jl != nil {
		c.jl.Close()
	}
	c.mu.Lock()
	n := c.outstandingLocked()
	c.mu.Unlock()
	if n > 0 {
		return fmt.Errorf("fleet: drain: %d job(s) still outstanding (journaled for the next start)", n)
	}
	return nil
}

// HardStop is the kill -9 analog for crash tests: it abandons
// everything mid-flight. No journal records are retired, dispatch
// goroutines are cut off, and nothing is waited for — exactly the state
// a real crash leaves. A new Coordinator on the same journal replays
// every accepted, unfinished job.
func (c *Coordinator) HardStop() {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return
	}
	c.crashed = true
	c.draining = true
	c.mu.Unlock()
	c.cancel()
	if c.jl != nil {
		c.jl.Close()
	}
}

// statusz snapshots the whole coordinator.
func (c *Coordinator) statusz() Statusz {
	c.mu.Lock()
	st := Statusz{
		State:     "serving",
		UptimeSec: time.Since(c.start).Seconds(),
		Tenants:   c.q.snapshot(),
		Queued:    c.q.len(),
	}
	switch {
	case c.crashed:
		st.State = "dead"
	case c.draining:
		st.State = "draining"
	case c.liveWorkersLocked() == 0:
		st.State = "degraded"
	}
	for _, j := range c.jobs {
		if j.state == JobDispatched {
			st.Dispatched++
		}
	}
	for _, name := range workerNames(c.workers) {
		st.Workers = append(st.Workers, c.workerStatusLocked(c.workers[name]))
	}
	c.mu.Unlock()

	st.Build = server.Build()
	if c.jl != nil {
		js := c.jl.Stats()
		st.Journal = &server.JournalStatus{
			Path: c.jl.Path(), Appended: js.Appended, Pending: js.Pending,
			Replayed: c.replayed.Load(), TornLines: js.TornLines,
			Errors: js.Errors, Compactions: js.Compactions,
		}
	}
	st.Accepted = c.accepted.Load()
	st.Deduped = c.deduped.Load()
	st.Completed = c.completed.Load()
	st.Failed = c.failed.Load()
	st.Requeues = c.requeues.Load()
	st.Preemptions = c.preemptions.Load()
	st.WorkerDeaths = c.workerDeaths.Load()
	st.Replayed = c.replayed.Load()
	st.RejectedFull = c.rejFull.Load()
	return st
}

// workerNames returns ids sorted for deterministic iteration.
func workerNames(ws map[string]*worker) []string {
	names := make([]string, 0, len(ws))
	for name := range ws {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
