package fleet

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"

	"gpushare/internal/server"
)

// routes wires the coordinator API onto the mux. The shape mirrors
// gserved's API so client tooling transfers: jobs and sweeps look the
// same, plus a /v1/workers registry that gserved does not have.
func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{key}", c.handleGetJob)
	c.mux.HandleFunc("GET /v1/sweeps", c.handleSweepList)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSweepSubmit)
	c.mux.HandleFunc("POST /v1/workers", c.handleRegister)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	c.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/workers/{id}/drain", c.handleWorkerDrain)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.HandleFunc("GET /statusz", c.handleStatusz)
}

// Handler returns the coordinator's HTTP handler with panic isolation,
// matching gserved's middleware contract.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("gsched: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				writeJSON(w, http.StatusInternalServerError, server.ErrorBody{
					Error: fmt.Sprintf("panic: %v", p), Kind: "panic"})
			}
		}()
		c.mux.ServeHTTP(w, r)
	})
}

// handleSubmit is POST /v1/jobs: admit into the fair queue (202), join
// an existing job by content key (200), or shed. ?wait=1 blocks until
// the job reaches a terminal state anywhere in the fleet.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readBody(w, r, &req) {
		return
	}
	j, code, err := c.submit(&req, false)
	if err != nil {
		kind := "bad-request"
		retry := 0
		switch code {
		case http.StatusTooManyRequests:
			kind, retry = "queue-full", 2
		case http.StatusServiceUnavailable:
			kind, retry = "draining", 2
		}
		if retry > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retry))
		}
		writeJSON(w, code, server.ErrorBody{Error: err.Error(), Kind: kind, RetryAfterSec: retry})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		c.waitAndReply(w, r, j)
		return
	}
	writeJSON(w, code, c.status(j))
}

// waitAndReply blocks until the job finishes or the request context
// ends (202 with current state — including the degraded-mode
// Retry-After hint when no workers are live).
func (c *Coordinator) waitAndReply(w http.ResponseWriter, r *http.Request, j *fjob) {
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, c.status(j))
		return
	}
	st := c.status(j)
	if st.State == JobDone {
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusInternalServerError, server.ErrorBody{
		Error: st.Error, Kind: "failed"})
}

// handleGetJob is GET /v1/jobs/{key}.
func (c *Coordinator) handleGetJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	c.mu.Lock()
	j, ok := c.jobs[key]
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, server.ErrorBody{
			Error: fmt.Sprintf("unknown job key %q", key), Kind: "not-found"})
		return
	}
	writeJSON(w, http.StatusOK, c.status(j))
}

// handleSweepSubmit is POST /v1/sweeps: batch admission with per-job
// outcomes; shed elements are marked rejected, not fatal to the batch.
func (c *Coordinator) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !readBody(w, r, &req) {
		return
	}
	resp := SweepResponse{Jobs: make([]JobStatus, 0, len(req.Jobs))}
	for i := range req.Jobs {
		sub := &req.Jobs[i]
		j, code, err := c.submit(sub, false)
		if err != nil {
			st := JobStatus{Tenant: sub.Tenant, Priority: sub.Priority}
			st.Workload = sub.Workload
			st.Scale = sub.Scale
			st.Error = err.Error()
			switch code {
			case http.StatusTooManyRequests:
				st.Rejected = "queue-full"
			case http.StatusServiceUnavailable:
				st.Rejected = "draining"
			default:
				st.Rejected = "bad-request"
			}
			resp.Jobs = append(resp.Jobs, st)
			resp.Rejected++
			continue
		}
		st := c.status(j)
		st.Stats = nil
		resp.Jobs = append(resp.Jobs, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweepList is GET /v1/sweeps: the fleet-wide job inventory.
func (c *Coordinator) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	jobs := make([]*fjob, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	resp := SweepResponse{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		st := c.status(j)
		st.Stats = nil
		st.Diagnosis = ""
		resp.Jobs = append(resp.Jobs, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRegister is POST /v1/workers: add a worker (or update one in
// place by id) and start probing it.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.URL == "" {
		writeJSON(w, http.StatusBadRequest, server.ErrorBody{
			Error: "url is required", Kind: "bad-request"})
		return
	}
	wk := c.addWorker(req)
	c.mu.Lock()
	st := c.workerStatusLocked(wk)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleWorkers is GET /v1/workers: the registry.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	resp := WorkersResponse{Workers: make([]WorkerStatus, 0, len(c.workers))}
	for _, id := range workerNames(c.workers) {
		resp.Workers = append(resp.Workers, c.workerStatusLocked(c.workers[id]))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleHeartbeat is POST /v1/workers/{id}/heartbeat: push lease
// renewal, complementing the coordinator's pull probes.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk, ok := c.heartbeat(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, server.ErrorBody{
			Error: fmt.Sprintf("unknown worker %q", id), Kind: "not-found"})
		return
	}
	c.mu.Lock()
	st := c.workerStatusLocked(wk)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleWorkerDrain is POST /v1/workers/{id}/drain: stop placing new
// jobs on a worker while honoring its lease (planned maintenance).
func (c *Coordinator) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk, ok := c.drainWorker(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, server.ErrorBody{
			Error: fmt.Sprintf("unknown worker %q", id), Kind: "not-found"})
		return
	}
	c.mu.Lock()
	st := c.workerStatusLocked(wk)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleHealthz is liveness.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness. The coordinator is ready while admitting —
// including degraded mode (no live workers): jobs are journaled and
// will run when a worker appears, which the body's "degraded" state and
// Retry-After hint advertise honestly.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	st := server.ReadyzStatus{Ready: true, State: server.ReadyOK,
		QueueDepth: c.q.len(), QueueCap: c.opts.QueueDepth}
	switch {
	case c.crashed:
		st.Ready, st.State = false, server.ReadyDead
	case c.draining:
		st.Ready, st.State = false, server.ReadyDraining
	case c.outstandingLocked() >= c.opts.QueueDepth:
		st.Ready, st.State = false, server.ReadyQueueFull
	case c.liveWorkersLocked() == 0:
		// Still ready — admission works — but flagged so routers know
		// completion waits on a worker.
		st.State = server.ReadyDegraded
		st.RetryAfterSec = int(c.opts.LeaseTTL.Seconds()) + 1
	}
	c.mu.Unlock()
	code := http.StatusOK
	if !st.Ready {
		if st.RetryAfterSec == 0 {
			st.RetryAfterSec = 2
		}
		w.Header().Set("Retry-After", strconv.Itoa(st.RetryAfterSec))
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleStatusz is the introspection snapshot.
func (c *Coordinator) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.statusz())
}

// readBody decodes a JSON body, rejecting unknown fields; on failure it
// writes the 400 itself and reports false.
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorBody{
			Error: fmt.Sprintf("decode request: %v", err), Kind: "bad-request"})
		return false
	}
	return true
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
