// End-to-end tests for the gsched coordinator against real in-process
// gserved workers: the crash matrix from the PR's acceptance criteria
// (worker killed mid-job, coordinator killed between dispatch and ack,
// heartbeat blackhole), checkpoint-based preemption with verified
// resume, degraded-mode admission, and byte-identical results versus a
// sequential single-node run in every case.
package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpushare/internal/config"
	"gpushare/internal/fault"
	"gpushare/internal/fleet"
	"gpushare/internal/runner"
	"gpushare/internal/server"
)

// seededReq builds a coordinator submission whose content key is unique
// to seed.
func seededReq(seed uint64, scale int) fleet.SubmitRequest {
	cfg := config.Default()
	cfg.Seed = seed
	var req fleet.SubmitRequest
	req.Workload = "gaussian"
	req.Scale = scale
	req.Config = &cfg
	return req
}

// sequentialStats runs the same job on a fresh single-node runner — the
// ground truth every fleet execution must match byte for byte.
func sequentialStats(t *testing.T, req fleet.SubmitRequest) []byte {
	t.Helper()
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}
	r := runner.New(runner.Options{})
	res := r.Do(runner.Job{Workload: req.Workload, Config: *req.Config, Scale: scale})
	if res.Err != nil {
		t.Fatalf("sequential baseline: %v", res.Err)
	}
	b, err := json.Marshal(res.Stats)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// startWorker serves a gserved daemon and returns it with its base URL.
// Cleanup closes the listener only — crash tests kill the server
// deliberately and graceful paths drain explicitly.
func startWorker(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 32
	}
	s := server.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Kill() // idempotent; frees worker goroutines without a drain wait
		ts.Close()
	})
	return s, ts.URL
}

// startCoordinator builds a Coordinator with probe timings tuned for
// tests and serves it.
func startCoordinator(t *testing.T, opts fleet.Options) (*fleet.Coordinator, string) {
	t.Helper()
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 500 * time.Millisecond
	}
	if opts.PollInterval == 0 {
		opts.PollInterval = 20 * time.Millisecond
	}
	c, err := fleet.New(opts)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		c.HardStop()
		ts.Close()
	})
	return c, ts.URL
}

// doJSON performs one HTTP exchange with JSON in/out and returns the
// status code.
func doJSON(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(body) > 0 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, body, err)
		}
	}
	return resp.StatusCode
}

// submitJob posts one submission and returns its status.
func submitJob(t *testing.T, base string, req fleet.SubmitRequest) fleet.JobStatus {
	t.Helper()
	var st fleet.JobStatus
	code := doJSON(t, "POST", base+"/v1/jobs", req, &st)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d %+v", code, st)
	}
	return st
}

// waitJob polls a fleet job until it is terminal.
func waitJob(t *testing.T, base, key string) fleet.JobStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		var st fleet.JobStatus
		if code := doJSON(t, "GET", base+"/v1/jobs/"+key, nil, &st); code != http.StatusOK {
			t.Fatalf("get %s = %d", key, code)
		}
		if st.State == fleet.JobDone || st.State == fleet.JobFailed {
			return st
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", key)
	return fleet.JobStatus{}
}

// fleetStatusz fetches the coordinator snapshot.
func fleetStatusz(t *testing.T, base string) fleet.Statusz {
	t.Helper()
	var st fleet.Statusz
	if code := doJSON(t, "GET", base+"/statusz", nil, &st); code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	return st
}

// TestFleetShardsAcrossWorkers: jobs from several tenants spread over
// two workers, every result byte-identical to a sequential single-node
// run.
func TestFleetShardsAcrossWorkers(t *testing.T) {
	_, w1 := startWorker(t, server.Options{})
	_, w2 := startWorker(t, server.Options{})
	_, base := startCoordinator(t, fleet.Options{Workers: []string{w1, w2}})

	reqs := make([]fleet.SubmitRequest, 6)
	keys := make([]string, 6)
	for i := range reqs {
		reqs[i] = seededReq(uint64(4000+i), 1)
		reqs[i].Tenant = []string{"alice", "bob", "carol"}[i%3]
		st := submitJob(t, base, reqs[i])
		if st.Key == "" {
			t.Fatalf("submit %d returned no key", i)
		}
		keys[i] = st.Key
	}
	for i, key := range keys {
		st := waitJob(t, base, key)
		if st.State != fleet.JobDone || st.Stats == nil {
			t.Fatalf("job %d = %+v, want done with stats", i, st)
		}
		if got := mustJSON(t, st.Stats); !bytes.Equal(got, sequentialStats(t, reqs[i])) {
			t.Fatalf("job %d stats differ from the sequential single-node run", i)
		}
		if st.Worker == "" {
			t.Fatalf("job %d reports no worker: %+v", i, st)
		}
	}

	var workers fleet.WorkersResponse
	doJSON(t, "GET", base+"/v1/workers", nil, &workers)
	if len(workers.Workers) != 2 {
		t.Fatalf("registry has %d workers, want 2", len(workers.Workers))
	}
	var total int64
	for _, w := range workers.Workers {
		if w.Dispatched == 0 {
			t.Fatalf("worker %s dispatched nothing; the fleet did not shard", w.ID)
		}
		total += w.Dispatched
	}
	if total < 6 {
		t.Fatalf("total dispatches = %d, want >= 6", total)
	}
	if st := fleetStatusz(t, base); st.Completed != 6 || st.Failed != 0 {
		t.Fatalf("statusz = completed %d failed %d, want 6/0", st.Completed, st.Failed)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkerCrashMidJobRequeuesOrphans — crash matrix row 1: a worker
// dies abruptly (in-process kill -9) while running a dispatched job.
// The failure detector sees the explicit dead state, requeues the
// orphan, and the surviving worker finishes it byte-identically.
func TestWorkerCrashMidJobRequeuesOrphans(t *testing.T) {
	crash := &fault.Plan{Kind: fault.WorkerCrashMidJob, Nth: 1}
	_, w1 := startWorker(t, server.Options{CrashFaults: crash})
	_, w2 := startWorker(t, server.Options{})
	_, base := startCoordinator(t, fleet.Options{
		Workers:       []string{w1, w2},
		LeaseTTL:      500 * time.Millisecond,
		ProbeInterval: 100 * time.Millisecond,
	})

	reqs := make([]fleet.SubmitRequest, 4)
	keys := make([]string, 4)
	for i := range reqs {
		reqs[i] = seededReq(uint64(4100+i), 2)
		keys[i] = submitJob(t, base, reqs[i]).Key
	}
	for i, key := range keys {
		st := waitJob(t, base, key)
		if st.State != fleet.JobDone {
			t.Fatalf("job %d = %+v, want done despite the worker crash", i, st)
		}
		if got := mustJSON(t, st.Stats); !bytes.Equal(got, sequentialStats(t, reqs[i])) {
			t.Fatalf("job %d stats differ from the sequential run after requeue", i)
		}
	}
	if !crash.Fired() {
		t.Fatal("the worker crash point never fired; the test exercised nothing")
	}
	st := fleetStatusz(t, base)
	if st.WorkerDeaths == 0 {
		t.Fatalf("statusz = %+v, want at least one worker death", st)
	}
	if st.Requeues == 0 {
		t.Fatal("the orphaned job was never requeued")
	}
	if st.Completed != 4 {
		t.Fatalf("completed = %d, want exactly 4 (at-most-once results)", st.Completed)
	}
}

// TestCoordinatorCrashAfterDispatchReplays — crash matrix row 2: the
// coordinator dies between a worker accepting a job and the ack being
// recorded. A fresh coordinator on the same journal replays the
// admission, re-dispatches, and the worker's content-key dedup turns
// the duplicate dispatch into the same single result.
func TestCoordinatorCrashAfterDispatchReplays(t *testing.T) {
	_, w1 := startWorker(t, server.Options{})
	journal := filepath.Join(t.TempDir(), "gsched.journal")

	crash := &fault.Plan{Kind: fault.CrashAfterDispatch, Nth: 1}
	c1, base1 := startCoordinator(t, fleet.Options{
		Workers:     []string{w1},
		JournalPath: journal,
		Faults:      crash,
	})
	req := seededReq(4200, 2)
	key := submitJob(t, base1, req).Key

	// The crash point fires inside the dispatch path; wait for the
	// injected death to become visible.
	deadline := time.Now().Add(30 * time.Second)
	for !crash.Fired() {
		if time.Now().After(deadline) {
			t.Fatal("the dispatch crash point never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var ready server.ReadyzStatus
	doJSON(t, "GET", base1+"/readyz", nil, &ready)
	if ready.State != server.ReadyDead {
		t.Fatalf("crashed coordinator readyz = %+v, want dead", ready)
	}
	_ = c1

	// Restart: same journal, same worker fleet.
	_, base2 := startCoordinator(t, fleet.Options{
		Workers:     []string{w1},
		JournalPath: journal,
	})
	st := waitJob(t, base2, key)
	if st.State != fleet.JobDone {
		t.Fatalf("replayed job = %+v, want done", st)
	}
	if got := mustJSON(t, st.Stats); !bytes.Equal(got, sequentialStats(t, req)) {
		t.Fatal("replayed job stats differ from the sequential run")
	}
	s2 := fleetStatusz(t, base2)
	if s2.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", s2.Replayed)
	}
	if s2.Journal == nil || s2.Journal.Pending != 0 {
		t.Fatalf("journal = %+v, want the finished job retired", s2.Journal)
	}
}

// TestHeartbeatBlackholeRequeuesWithoutDoubleCount — crash matrix row
// 3: a partition hides a healthy worker from the coordinator. Its lease
// expires, its jobs requeue onto the survivor — and even though the
// partitioned worker keeps computing, every job yields exactly one
// result (first terminal wins, content-key dedup).
func TestHeartbeatBlackholeRequeuesWithoutDoubleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("tens of seconds of simulation under -race; covered by plain go test and check.sh -full")
	}
	_, w1 := startWorker(t, server.Options{})
	_, w2 := startWorker(t, server.Options{})
	blackhole := &fault.Plan{Kind: fault.HeartbeatBlackhole, Nth: 1}
	_, base := startCoordinator(t, fleet.Options{
		Workers:       []string{w1, w2},
		LeaseTTL:      400 * time.Millisecond,
		ProbeInterval: 120 * time.Millisecond,
		Faults:        blackhole,
	})

	// Enough moderately slow jobs that both workers hold one when the
	// partition lands.
	reqs := make([]fleet.SubmitRequest, 4)
	keys := make([]string, 4)
	for i := range reqs {
		reqs[i] = seededReq(uint64(4300+i), 3)
		keys[i] = submitJob(t, base, reqs[i]).Key
	}
	for i, key := range keys {
		st := waitJob(t, base, key)
		if st.State != fleet.JobDone {
			t.Fatalf("job %d = %+v, want done across the partition", i, st)
		}
		if got := mustJSON(t, st.Stats); !bytes.Equal(got, sequentialStats(t, reqs[i])) {
			t.Fatalf("job %d stats differ from the sequential run", i)
		}
	}
	if !blackhole.Fired() {
		t.Fatal("the blackhole crash point never fired")
	}
	st := fleetStatusz(t, base)
	if st.WorkerDeaths == 0 {
		t.Fatal("the partitioned worker was never declared dead")
	}
	if st.Completed != 4 {
		t.Fatalf("completed = %d, want exactly 4: duplicate executions must not double-count", st.Completed)
	}
}

// TestPreemptionResumesFromCheckpoint: a higher-priority arrival
// preempts the running low-priority job; the preempted job later
// resumes from its checkpoint trail (CkRestored > 0) instead of cycle
// 0, and both finish byte-identical to sequential runs.
func TestPreemptionResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("tens of seconds of simulation under -race; covered by plain go test and check.sh -full")
	}
	ckDir := t.TempDir()
	srv, w1 := startWorker(t, server.Options{
		Workers: 1,
		Runner:  runner.Options{CheckpointDir: ckDir, CheckpointStride: 5_000},
	})
	_, base := startCoordinator(t, fleet.Options{Workers: []string{w1}})

	low := seededReq(4400, 8) // slow enough to checkpoint before preemption
	low.Priority = 0
	lowKey := submitJob(t, base, low).Key

	// Wait until the low job has durably checkpointed at least once, so
	// the preemption has a trail to resume from.
	deadline := time.Now().Add(60 * time.Second)
	for srv.Runner().Counters().CkSaved == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the low-priority job never checkpointed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	high := seededReq(4401, 1)
	high.Priority = 5
	highKey := submitJob(t, base, high).Key

	highSt := waitJob(t, base, highKey)
	if highSt.State != fleet.JobDone {
		t.Fatalf("high-priority job = %+v, want done", highSt)
	}
	lowSt := waitJob(t, base, lowKey)
	if lowSt.State != fleet.JobDone {
		t.Fatalf("preempted job = %+v, want done after resume", lowSt)
	}
	if lowSt.Preemptions == 0 {
		t.Fatalf("preempted job records no preemption: %+v", lowSt)
	}
	if got := srv.Runner().Counters().CkRestored; got == 0 {
		t.Fatal("CkRestored = 0: the preempted job restarted from cycle 0 instead of its trail")
	}
	if got := mustJSON(t, lowSt.Stats); !bytes.Equal(got, sequentialStats(t, low)) {
		t.Fatal("preempted-and-resumed stats differ from the sequential run")
	}
	if got := mustJSON(t, highSt.Stats); !bytes.Equal(got, sequentialStats(t, high)) {
		t.Fatal("high-priority stats differ from the sequential run")
	}
	if st := fleetStatusz(t, base); st.Preemptions == 0 {
		t.Fatal("statusz records no preemption")
	}
}

// TestDegradedModeQueuesWithHonestRetryAfter: with no live workers the
// coordinator keeps admitting — the journal makes the promise durable —
// and says so: 202 with a Retry-After hint, readyz "degraded". A worker
// registering at runtime drains the backlog.
func TestDegradedModeQueuesWithHonestRetryAfter(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "gsched.journal")
	_, base := startCoordinator(t, fleet.Options{JournalPath: journal})

	var ready server.ReadyzStatus
	if code := doJSON(t, "GET", base+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("degraded readyz = %d, want 200 (admission still works)", code)
	}
	if ready.State != server.ReadyDegraded || ready.RetryAfterSec < 1 {
		t.Fatalf("degraded readyz = %+v, want degraded with a retry hint", ready)
	}

	req := seededReq(4500, 1)
	var st fleet.JobStatus
	if code := doJSON(t, "POST", base+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("degraded submit = %d, want 202", code)
	}
	if st.State != fleet.JobQueued || st.RetryAfterSec < 1 {
		t.Fatalf("degraded submit status = %+v, want queued with a retry hint", st)
	}

	// A worker appears; the backlog drains.
	_, w1 := startWorker(t, server.Options{})
	var reg fleet.WorkerStatus
	if code := doJSON(t, "POST", base+"/v1/workers", fleet.RegisterRequest{URL: w1}, &reg); code != http.StatusOK {
		t.Fatalf("register = %d", code)
	}
	got := waitJob(t, base, st.Key)
	if got.State != fleet.JobDone {
		t.Fatalf("job after worker registration = %+v, want done", got)
	}
	if bytes.Compare(mustJSON(t, got.Stats), sequentialStats(t, req)) != 0 {
		t.Fatal("stats differ from the sequential run")
	}
}

// TestSweepAndDedup: batch admission reports per-job outcomes, and
// resubmitting the same content joins the existing job instead of
// running twice.
func TestSweepAndDedup(t *testing.T) {
	_, w1 := startWorker(t, server.Options{})
	_, base := startCoordinator(t, fleet.Options{Workers: []string{w1}})

	sweep := fleet.SweepRequest{Jobs: []fleet.SubmitRequest{
		seededReq(4600, 1), seededReq(4601, 1),
	}}
	bad := seededReq(4602, 1)
	bad.Workload = "no-such-benchmark"
	sweep.Jobs = append(sweep.Jobs, bad)

	var resp fleet.SweepResponse
	if code := doJSON(t, "POST", base+"/v1/sweeps", sweep, &resp); code != http.StatusOK {
		t.Fatalf("sweep = %d", code)
	}
	if resp.Rejected != 1 || len(resp.Jobs) != 3 {
		t.Fatalf("sweep response = %+v, want 2 admitted + 1 rejected", resp)
	}
	for _, js := range resp.Jobs[:2] {
		if st := waitJob(t, base, js.Key); st.State != fleet.JobDone {
			t.Fatalf("sweep job %s = %+v, want done", js.Key, st)
		}
	}

	// Resubmit the first job: 200 (joined), not a second execution.
	var again fleet.JobStatus
	if code := doJSON(t, "POST", base+"/v1/jobs", seededReq(4600, 1), &again); code != http.StatusOK {
		t.Fatalf("dedup resubmit = %d, want 200", code)
	}
	if st := fleetStatusz(t, base); st.Deduped != 1 || st.Completed != 2 {
		t.Fatalf("statusz = deduped %d completed %d, want 1/2", st.Deduped, st.Completed)
	}
}

// TestCoordinatorDrainRefusesNewWork: draining answers 503 on submit
// and the readyz body says "draining", distinct from dead.
func TestCoordinatorDrainRefusesNewWork(t *testing.T) {
	_, w1 := startWorker(t, server.Options{})
	c, base := startCoordinator(t, fleet.Options{Workers: []string{w1}})

	key := submitJob(t, base, seededReq(4700, 1)).Key
	waitJob(t, base, key)

	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var errBody server.ErrorBody
	if code := doJSON(t, "POST", base+"/v1/jobs", seededReq(4701, 1), &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	if errBody.Kind != "draining" {
		t.Fatalf("shed kind = %q, want draining", errBody.Kind)
	}
	var ready server.ReadyzStatus
	doJSON(t, "GET", base+"/readyz", nil, &ready)
	if ready.State != server.ReadyDraining {
		t.Fatalf("draining readyz = %+v, want draining", ready)
	}
}

// TestWorkerDrainSteersPlacement: a worker put into drain keeps its
// lease but receives no new jobs; the other worker absorbs the load.
func TestWorkerDrainSteersPlacement(t *testing.T) {
	_, w1 := startWorker(t, server.Options{})
	_, w2 := startWorker(t, server.Options{})
	_, base := startCoordinator(t, fleet.Options{
		Workers:       []string{w1, w2},
		ProbeInterval: 100 * time.Millisecond,
	})

	var drained fleet.WorkerStatus
	if code := doJSON(t, "POST", base+"/v1/workers/"+urlID(w1)+"/drain", nil, &drained); code != http.StatusOK {
		t.Fatalf("worker drain = %d", code)
	}
	if drained.State != fleet.WorkerDraining {
		t.Fatalf("drained worker state = %q, want draining", drained.State)
	}

	for i := 0; i < 3; i++ {
		st := waitJob(t, base, submitJob(t, base, seededReq(uint64(4800+i), 1)).Key)
		if st.State != fleet.JobDone {
			t.Fatalf("job %d = %+v, want done", i, st)
		}
		if st.Worker == urlID(w1) {
			t.Fatalf("job %d placed on the draining worker", i)
		}
	}
}

// urlID is the default worker id for a statically registered URL: its
// host:port.
func urlID(u string) string { return strings.TrimPrefix(u, "http://") }

// TestFleetJournalSurvivesKill: jobs admitted in degraded mode survive
// a coordinator kill -9 — the restarted coordinator replays them and,
// once a worker exists, runs them.
func TestFleetJournalSurvivesKill(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "gsched.journal")
	c1, base1 := startCoordinator(t, fleet.Options{JournalPath: journal})

	keys := make([]string, 3)
	reqs := make([]fleet.SubmitRequest, 3)
	for i := range keys {
		reqs[i] = seededReq(uint64(4900+i), 1)
		reqs[i].Tenant = fmt.Sprintf("t%d", i)
		keys[i] = submitJob(t, base1, reqs[i]).Key
	}
	c1.HardStop()

	_, w1 := startWorker(t, server.Options{})
	_, base2 := startCoordinator(t, fleet.Options{
		JournalPath: journal,
		Workers:     []string{w1},
	})
	if st := fleetStatusz(t, base2); st.Replayed != 3 {
		t.Fatalf("replayed = %d, want 3", st.Replayed)
	}
	for i, key := range keys {
		st := waitJob(t, base2, key)
		if st.State != fleet.JobDone {
			t.Fatalf("replayed job %d = %+v, want done", i, st)
		}
		if got := mustJSON(t, st.Stats); !bytes.Equal(got, sequentialStats(t, reqs[i])) {
			t.Fatalf("replayed job %d stats differ from the sequential run", i)
		}
	}
}
