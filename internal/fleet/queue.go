package fleet

import (
	"sort"
)

// fairQueue holds queued jobs in per-tenant weighted fair-share queues
// with strict priority bands on top. Selection order:
//
//  1. the highest priority with any queued job wins outright (strict
//     bands — priorities express urgency, not shares);
//  2. within that band, the tenant with the lowest virtual time runs
//     next (weighted fair queuing: popping a job advances the tenant's
//     virtual time by 1/weight, so a weight-3 tenant is charged a third
//     as much per job and receives three times the dispatch rate under
//     contention);
//  3. within a tenant and band, FIFO by admission sequence.
//
// A tenant that goes idle and returns does not get to bank its idle
// time: on its first job after being empty, its virtual time is lifted
// to the minimum virtual time of the currently backlogged tenants, so
// it competes from "now" rather than replaying its entire absence.
// Together with strict FIFO inside a band this makes the queue
// starvation-free for equal priorities; across bands, starvation of
// lower priorities under sustained higher-priority load is the
// documented, intended semantics.
//
// fairQueue is not safe for concurrent use; the Coordinator guards it
// with its own mutex.
type fairQueue struct {
	tenants map[string]*tenantQueue
	size    int
}

// tenantQueue is one fair-share account.
type tenantQueue struct {
	name    string
	weight  int
	vtime   float64
	started int64 // jobs popped over the queue's lifetime
	// byPrio holds FIFO slices per priority band; index = priority.
	byPrio [maxPriority + 1][]*fjob
	queued int
}

// maxPriority bounds the priority range ([0, maxPriority]).
const maxPriority = 9

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: make(map[string]*tenantQueue)}
}

// tenant returns (creating if needed) the named account. The first
// submission fixes the weight; later submissions with a different
// weight do not silently rewrite history.
func (q *fairQueue) tenant(name string, weight int) *tenantQueue {
	t, ok := q.tenants[name]
	if !ok {
		if weight <= 0 {
			weight = 1
		}
		if weight > 100 {
			weight = 100
		}
		t = &tenantQueue{name: name, weight: weight}
		q.tenants[name] = t
	}
	return t
}

// push enqueues a job under its tenant and priority.
func (q *fairQueue) push(j *fjob) {
	t := q.tenant(j.tenant, j.weight)
	if t.queued == 0 {
		// Re-entering after idleness: lift the tenant's clock to the
		// backlogged minimum so it cannot starve everyone with banked
		// idle time.
		if min, ok := q.minBackloggedVTime(); ok && t.vtime < min {
			t.vtime = min
		}
	}
	t.byPrio[j.priority] = append(t.byPrio[j.priority], j)
	t.queued++
	q.size++
}

// minBackloggedVTime is the smallest virtual time among tenants with
// queued work.
func (q *fairQueue) minBackloggedVTime() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range q.tenants {
		if t.queued == 0 {
			continue
		}
		if !ok || t.vtime < min {
			min, ok = t.vtime, true
		}
	}
	return min, ok
}

// pop removes and returns the next job to dispatch, or nil when empty.
// eligible filters jobs (nil = all): a job for which eligible returns
// false is skipped in place — used to hold back jobs in dispatch
// backoff without losing their position.
func (q *fairQueue) pop(eligible func(*fjob) bool) *fjob {
	if q.size == 0 {
		return nil
	}
	for prio := maxPriority; prio >= 0; prio-- {
		// Among tenants with work at this band, lowest vtime first; ties
		// break by name so selection is deterministic.
		var best *tenantQueue
		var bestIdx int
		for _, name := range q.tenantNames() {
			t := q.tenants[name]
			idx := t.firstEligible(prio, eligible)
			if idx < 0 {
				continue
			}
			if best == nil || t.vtime < best.vtime || (t.vtime == best.vtime && t.name < best.name) {
				best, bestIdx = t, idx
			}
		}
		if best == nil {
			continue
		}
		j := best.byPrio[prio][bestIdx]
		best.byPrio[prio] = append(best.byPrio[prio][:bestIdx], best.byPrio[prio][bestIdx+1:]...)
		best.queued--
		best.vtime += 1.0 / float64(best.weight)
		best.started++
		q.size--
		return j
	}
	return nil
}

// firstEligible returns the index of the first eligible job in the
// tenant's FIFO at prio, or -1.
func (t *tenantQueue) firstEligible(prio int, eligible func(*fjob) bool) int {
	for i, j := range t.byPrio[prio] {
		if eligible == nil || eligible(j) {
			return i
		}
	}
	return -1
}

// peekPriority returns the highest priority with an eligible queued
// job, or -1 when none. The dispatcher uses it to decide whether a
// pending job outranks anything currently running (preemption test)
// without dequeuing.
func (q *fairQueue) peekPriority(eligible func(*fjob) bool) int {
	if q.size == 0 {
		return -1
	}
	for prio := maxPriority; prio >= 0; prio-- {
		for _, t := range q.tenants {
			if t.firstEligible(prio, eligible) >= 0 {
				return prio
			}
		}
	}
	return -1
}

// len is the number of queued jobs.
func (q *fairQueue) len() int { return q.size }

// tenantNames returns tenant names sorted for deterministic iteration.
func (q *fairQueue) tenantNames() []string {
	names := make([]string, 0, len(q.tenants))
	for name := range q.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// snapshot fills the statusz tenant table.
func (q *fairQueue) snapshot() []TenantStatus {
	out := make([]TenantStatus, 0, len(q.tenants))
	for _, name := range q.tenantNames() {
		t := q.tenants[name]
		out = append(out, TenantStatus{
			Name: t.name, Weight: t.weight, Queued: t.queued,
			VTime: t.vtime, Started: t.started,
		})
	}
	return out
}
