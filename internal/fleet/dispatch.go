package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gpushare/internal/client"
	"gpushare/internal/fault"
	"gpushare/internal/server"
)

// schedulerLoop drains the fair queue onto free worker slots. It wakes
// on kicks (admission, completion, requeue, registration) and on a
// coarse ticker that retries jobs parked in dispatch backoff.
func (c *Coordinator) schedulerLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-c.kick:
		case <-tick.C:
		}
		c.scheduleOnce()
	}
}

// scheduleOnce makes one pass: dispatch queued jobs onto free slots,
// then — when the queue still holds something that outranks a running
// job and no slot is free — initiate one preemption.
func (c *Coordinator) scheduleOnce() {
	now := time.Now()
	eligible := func(j *fjob) bool {
		return j.state == JobQueued && !now.Before(j.notBefore)
	}

	c.mu.Lock()
	for {
		w := c.freeWorkerLocked()
		if w == nil {
			break
		}
		j := c.q.pop(eligible)
		if j == nil {
			break
		}
		if j.state != JobQueued {
			// A terminal result arrived (e.g. from a partitioned worker
			// that finished the job after it was requeued) while the
			// entry sat in the queue; nothing left to run.
			continue
		}
		c.startDispatchLocked(j, w)
	}

	var preempt *fjob
	var preemptCl *client.Client
	if !c.opts.NoPreemption {
		if p := c.q.peekPriority(eligible); p >= 0 {
			if victim := c.preemptVictimLocked(p); victim != nil {
				victim.preempting = true
				c.preemptions.Add(1)
				preempt = victim
				preemptCl = c.workers[victim.worker].cl
			}
		}
	}
	c.mu.Unlock()

	if preempt != nil {
		// Cancel on the worker outside the lock; the dispatch goroutine
		// observes the canceled terminal state and requeues. The
		// checkpoint trail survives cancellation, so the preempted job
		// resumes from its last checkpoint, not cycle 0.
		key := preempt.key
		cl := preemptCl
		go func() {
			ctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
			defer cancel()
			_, _ = cl.Cancel(ctx, key)
		}()
	}
}

// freeWorkerLocked picks the alive worker with the most spare slots
// (ties by id, so placement is deterministic), or nil when every slot
// is busy.
func (c *Coordinator) freeWorkerLocked() *worker {
	var best *worker
	for _, id := range workerNames(c.workers) {
		w := c.workers[id]
		if w.state != WorkerAlive || len(w.inflight) >= w.slots {
			continue
		}
		if best == nil || w.slots-len(w.inflight) > best.slots-len(best.inflight) {
			best = w
		}
	}
	return best
}

// preemptVictimLocked returns the running job most worth displacing for
// a queued job of priority p: the lowest-priority dispatched job
// strictly below p that is not already being preempted. Among equals,
// the most recently admitted yields first (LIFO — the oldest work keeps
// its progress).
func (c *Coordinator) preemptVictimLocked(p int) *fjob {
	var victim *fjob
	for _, w := range c.workers {
		if w.state != WorkerAlive {
			continue
		}
		for _, j := range w.inflight {
			if j.preempting || j.state != JobDispatched || j.priority >= p {
				continue
			}
			if victim == nil || j.priority < victim.priority ||
				(j.priority == victim.priority && j.seq > victim.seq) {
				victim = j
			}
		}
	}
	return victim
}

// startDispatchLocked binds a job to a worker slot and launches the
// dispatch goroutine.
func (c *Coordinator) startDispatchLocked(j *fjob, w *worker) {
	ctx, cancel := context.WithCancel(c.baseCtx)
	j.state = JobDispatched
	j.worker = w.id
	j.cancelDispatch = cancel
	w.inflight[j.key] = j
	w.dispatched++
	go c.runDispatch(ctx, j, w)
}

// runDispatch drives one dispatch attempt end to end: submit, crash
// point, poll to terminal, record. Dispatch is at-least-once — the
// worker deduplicates by content key, so re-sending a job it already
// holds (after a coordinator restart, or a requeue race) joins the
// existing run or returns the cached result.
func (c *Coordinator) runDispatch(ctx context.Context, j *fjob, w *worker) {
	st, err := w.cl.Submit(ctx, j.req.SubmitRequest)
	if err != nil {
		c.dispatchFailed(j, w, err)
		return
	}

	// Crash point: the coordinator dies after the worker durably
	// accepted the job but before this process records anything about
	// it. On restart the journal replays the admission, the job is
	// re-dispatched, and the worker's dedup makes the second submit
	// harmless — this is the at-least-once half of the
	// exactly-once-results argument, exercised directly.
	if c.opts.Faults.Trip(fault.CrashAfterDispatch, 0, -1, -1, "dispatch of "+j.key+" to "+w.id) {
		c.HardStop()
		return
	}

	if !terminalState(st.State) {
		st, err = w.cl.Wait(ctx, j.key, c.opts.PollInterval)
		if err != nil {
			c.dispatchFailed(j, w, err)
			return
		}
	}
	switch st.State {
	case server.StateDone, server.StateFailed:
		c.finish(j, w, st)
	case server.StateCanceled:
		// Preemption, worker drain, or worker-side deadline: the work is
		// still owed. The checkpoint trail survives on disk, so the next
		// dispatch resumes rather than restarts.
		c.requeueFromWorker(j, w)
	default:
		c.dispatchFailed(j, w, fmt.Errorf("fleet: worker %s returned non-terminal state %q", w.id, st.State))
	}
}

// terminalState reports whether a worker-side job state is final.
func terminalState(s string) bool {
	return s == server.StateDone || s == server.StateFailed || s == server.StateCanceled
}

// finish records a terminal result. The first terminal result wins:
// duplicate executions (a requeued job that a partitioned worker also
// finished) are byte-identical by simulator determinism, and every
// later arrival is dropped here, which is what makes results
// at-most-once even though dispatch is at-least-once.
func (c *Coordinator) finish(j *fjob, w *worker, st *server.JobStatus) {
	c.mu.Lock()
	if j.state == JobDone || j.state == JobFailed {
		c.mu.Unlock()
		return
	}
	delete(w.inflight, j.key)
	j.res = *st
	j.state = st.State
	j.preempting = false
	j.cancelDispatch = nil
	w.completed++
	close(j.done)
	crashed := c.crashed
	c.mu.Unlock()

	if st.State == server.StateDone {
		c.completed.Add(1)
	} else {
		c.failed.Add(1)
	}
	if c.jl != nil && !crashed {
		_ = c.jl.Done(j.key)
	}
	c.kickScheduler()
}

// requeueFromWorker returns a dispatched job to the queue after the
// worker reported it canceled.
func (c *Coordinator) requeueFromWorker(j *fjob, w *worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(w.inflight, j.key)
	if j.state != JobDispatched || j.worker != w.id {
		return // markDead or a competing path already moved it
	}
	c.requeueLocked(j, j.preempting)
}

// dispatchFailed handles a dispatch attempt that never produced a
// terminal state: transport failure, worker shed, poll error. The job
// goes back to the queue with a short hold-down so a flapping worker
// cannot spin the scheduler.
func (c *Coordinator) dispatchFailed(j *fjob, w *worker, err error) {
	if c.baseCtx.Err() != nil {
		return // coordinator stopping; journal owns the job now
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(w.inflight, j.key)
	if j.state != JobDispatched || j.worker != w.id {
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && !apiErr.Retryable() {
		// The worker deterministically rejected the submission (4xx).
		// The coordinator validated it identically at admission, so this
		// is a version skew or operator error, not transience: fail the
		// job honestly instead of requeuing forever.
		j.res = server.JobStatus{Key: j.key, State: server.StateFailed,
			Workload: j.req.Workload, Scale: j.req.Scale,
			Error: fmt.Sprintf("worker %s rejected job: %v", w.id, err)}
		j.state = JobFailed
		j.preempting = false
		j.cancelDispatch = nil
		close(j.done)
		c.failed.Add(1)
		if c.jl != nil && !c.crashed {
			_ = c.jl.Done(j.key)
		}
		return
	}
	j.notBefore = time.Now().Add(c.opts.ProbeInterval)
	c.requeueLocked(j, false)
}

// requeueLocked returns a job to the fair queue. preempted marks a
// requeue caused by deliberate preemption (counted separately).
func (c *Coordinator) requeueLocked(j *fjob, preempted bool) {
	j.state = JobQueued
	j.worker = ""
	j.requeues++
	c.requeues.Add(1)
	if preempted {
		j.preemptions++
	}
	j.preempting = false
	if j.cancelDispatch != nil {
		j.cancelDispatch()
		j.cancelDispatch = nil
	}
	c.q.push(j)
	c.kickScheduler()
}

// probeLoop is the failure detector: every ProbeInterval it probes each
// registered worker's /readyz and applies the lease rules.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-tick.C:
		}
		c.probeAll()
	}
}

// probeAll probes every worker concurrently and waits for the sweep.
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, id := range workerNames(c.workers) {
		ws = append(ws, c.workers[id])
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(w)
		}(w)
	}
	wg.Wait()
	c.kickScheduler()
}

// probe runs one heartbeat probe against one worker and applies the
// lease state machine.
func (c *Coordinator) probe(w *worker) {
	// Crash point: a partition. The worker stays alive and keeps
	// computing, but from this probe on the coordinator never hears from
	// it — the flag is sticky, emulating a cut cable rather than one
	// dropped packet.
	if c.opts.Faults.Trip(fault.HeartbeatBlackhole, 0, -1, -1, "probe of "+w.id) {
		c.mu.Lock()
		w.blackholed = true
		c.mu.Unlock()
	}
	c.mu.Lock()
	blackholed := w.blackholed
	cl := w.cl
	c.mu.Unlock()

	var st *server.ReadyzStatus
	var err error
	if blackholed {
		err = fmt.Errorf("fleet: probe blackholed (injected partition)")
	} else {
		ctx, cancel := context.WithTimeout(c.baseCtx, c.opts.ProbeInterval)
		st, err = cl.Ready(ctx)
		cancel()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Missed heartbeat. One miss is not death — the lease is. Only
		// when no probe or push heartbeat has landed for a full TTL does
		// the worker flip to dead and its jobs requeue.
		if time.Now().After(w.leaseExpiry) {
			c.markDeadLocked(w)
		}
		return
	}
	// Any parsed readyz body renews the lease — the process answered —
	// except the "dead" state, which is the worker itself reporting that
	// its executor is gone (in-process kill): its jobs will never
	// finish, so treat it exactly like a silent death.
	switch st.State {
	case server.ReadyDead:
		c.markDeadLocked(w)
	case server.ReadyDraining:
		w.leaseExpiry = time.Now().Add(c.opts.LeaseTTL)
		if w.state == WorkerAlive {
			w.state = WorkerDraining
		}
	default:
		// ready or queue-full: alive and worth dispatching to (a full
		// queue sheds with Retry-After; the dispatch path backs off).
		w.leaseExpiry = time.Now().Add(c.opts.LeaseTTL)
		switch {
		case w.pinnedDrain:
			// An operator drained this worker on the coordinator; a
			// healthy probe must not quietly undo that decision.
			if w.state != WorkerDraining {
				w.state = WorkerDraining
			}
		case w.state != WorkerAlive:
			// Revival: a dead or draining worker is answering ready
			// again (restart, healed partition, drain abandoned). It
			// rejoins with a fresh lease; any jobs it finished while
			// written off are deduplicated by content key.
			w.state = WorkerAlive
		}
	}
}

// markDeadLocked declares a worker dead and requeues everything it
// held. Requeue, not fail: dispatch is at-least-once, and the jobs'
// checkpoint trails (on the shared checkpoint directory) let any other
// worker resume them from the last checkpoint.
func (c *Coordinator) markDeadLocked(w *worker) {
	if w.state == WorkerDead {
		return
	}
	w.state = WorkerDead
	w.deaths++
	c.workerDeaths.Add(1)
	for key, j := range w.inflight {
		delete(w.inflight, key)
		if j.state != JobDispatched || j.worker != w.id {
			continue
		}
		c.requeueLocked(j, j.preempting)
	}
}

// heartbeat is the push half of failure detection: POST
// /v1/workers/{id}/heartbeat renews the lease without waiting for the
// next probe sweep, and revives a dead entry (the worker is plainly
// alive — it just called us).
func (c *Coordinator) heartbeat(id string) (*worker, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return nil, false
	}
	w.leaseExpiry = time.Now().Add(c.opts.LeaseTTL)
	if w.state == WorkerDead {
		if w.pinnedDrain {
			w.state = WorkerDraining
		} else {
			w.state = WorkerAlive
		}
	}
	return w, true
}

// drainWorker marks a worker draining: its lease stays honored but no
// new jobs are placed on it. In-flight jobs are left to finish.
func (c *Coordinator) drainWorker(id string) (*worker, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return nil, false
	}
	w.pinnedDrain = true
	if w.state == WorkerAlive {
		w.state = WorkerDraining
	}
	return w, true
}
