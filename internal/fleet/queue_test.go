package fleet

import (
	"fmt"
	"testing"
)

// qjob builds a queued test job.
func qjob(tenant string, weight, prio int, seq int64) *fjob {
	return &fjob{
		key: fmt.Sprintf("%s-%d", tenant, seq), tenant: tenant,
		weight: weight, priority: prio, seq: seq, state: JobQueued,
	}
}

// popAll drains the queue and returns the tenants in pop order.
func popAll(q *fairQueue) []string {
	var order []string
	for {
		j := q.pop(nil)
		if j == nil {
			return order
		}
		order = append(order, j.tenant)
	}
}

// TestPriorityBandsDominate: a higher band empties completely before a
// lower one yields anything, regardless of tenant fairness.
func TestPriorityBandsDominate(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 3; i++ {
		q.push(qjob("a", 1, 0, i))
	}
	for i := int64(10); i < 12; i++ {
		q.push(qjob("b", 1, 5, i))
	}
	got := popAll(q)
	want := []string{"b", "b", "a", "a", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

// TestWeightedFairShare: under sustained contention a weight-3 tenant
// receives three times the dispatch rate of a weight-1 tenant.
func TestWeightedFairShare(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 40; i++ {
		q.push(qjob("a", 3, 0, i))
		q.push(qjob("b", 1, 0, 100+i))
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		j := q.pop(nil)
		if j == nil {
			t.Fatalf("queue dried up after %d pops", i)
		}
		counts[j.tenant]++
	}
	if counts["a"] < 28 || counts["a"] > 32 {
		t.Fatalf("weight-3 tenant got %d of 40 pops, want ~30 (weight-1 got %d)", counts["a"], counts["b"])
	}
}

// TestIdleTenantCannotBankCredit: a tenant that sat idle re-enters at
// the backlogged minimum virtual time instead of replaying its absence
// as a monopoly.
func TestIdleTenantCannotBankCredit(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 20; i++ {
		q.push(qjob("busy", 1, 0, i))
	}
	for i := 0; i < 10; i++ {
		q.pop(nil) // busy's vtime advances to 10
	}
	q.push(qjob("idle", 1, 0, 100))
	if got, want := q.tenants["idle"].vtime, q.tenants["busy"].vtime; got != want {
		t.Fatalf("idle tenant re-entered at vtime %f, want lifted to %f", got, want)
	}
	// From here the two tenants alternate rather than idle draining its
	// backlog first... it has one job; after it pops once both are even.
	first := q.pop(nil)
	if first == nil {
		t.Fatal("empty pop")
	}
}

// TestFIFOWithinTenant: same tenant, same band — strict admission
// order.
func TestFIFOWithinTenant(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 5; i++ {
		q.push(qjob("a", 1, 0, i))
	}
	for i := int64(0); i < 5; i++ {
		j := q.pop(nil)
		if j.seq != i {
			t.Fatalf("pop %d returned seq %d, want FIFO", i, j.seq)
		}
	}
}

// TestDeterministicTieBreak: equal vtime and band resolve by tenant
// name, so two coordinators fed the same sequence dispatch identically.
func TestDeterministicTieBreak(t *testing.T) {
	q := newFairQueue()
	q.push(qjob("zeta", 1, 0, 1))
	q.push(qjob("alpha", 1, 0, 2))
	if j := q.pop(nil); j.tenant != "alpha" {
		t.Fatalf("tie broke to %q, want alpha", j.tenant)
	}
}

// TestEligibleFilterHoldsPosition: a job held back by the filter keeps
// its FIFO slot and pops first once eligible again.
func TestEligibleFilterHoldsPosition(t *testing.T) {
	q := newFairQueue()
	for i := int64(0); i < 3; i++ {
		q.push(qjob("a", 1, 0, i))
	}
	skipFirst := func(j *fjob) bool { return j.seq != 0 }
	if j := q.pop(skipFirst); j.seq != 1 {
		t.Fatalf("filtered pop returned seq %d, want 1", j.seq)
	}
	if j := q.pop(nil); j.seq != 0 {
		t.Fatalf("unfiltered pop returned seq %d, want the held-back 0", j.seq)
	}
	if got := q.len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
}

// TestPeekPriority: reports the top eligible band without dequeuing.
func TestPeekPriority(t *testing.T) {
	q := newFairQueue()
	if got := q.peekPriority(nil); got != -1 {
		t.Fatalf("empty peek = %d, want -1", got)
	}
	q.push(qjob("a", 1, 2, 1))
	q.push(qjob("b", 1, 7, 2))
	if got := q.peekPriority(nil); got != 7 {
		t.Fatalf("peek = %d, want 7", got)
	}
	only2 := func(j *fjob) bool { return j.priority == 2 }
	if got := q.peekPriority(only2); got != 2 {
		t.Fatalf("filtered peek = %d, want 2", got)
	}
	if got := q.len(); got != 2 {
		t.Fatalf("peek consumed jobs: len = %d, want 2", got)
	}
}
