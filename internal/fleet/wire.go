package fleet

import (
	"gpushare/internal/server"
)

// Worker lifecycle states. The transitions form the lease state
// machine:
//
//	alive ──(probe sees draining body)──▶ draining
//	alive/draining ──(lease expires: no successful probe or push
//	                  heartbeat within LeaseTTL)──▶ dead, in-flight
//	                  jobs requeued
//	dead ──(a probe succeeds again)──▶ alive (fresh lease; the worker
//	                  rejoins the pool — any jobs it finished meanwhile
//	                  are deduplicated by content key)
const (
	WorkerAlive    = "alive"
	WorkerDraining = "draining"
	WorkerDead     = "dead"
)

// Fleet job states. Queued and dispatched jobs are non-terminal; done
// and failed are terminal. There is deliberately no terminal "canceled"
// at the fleet level: a job canceled on a worker (preemption, worker
// drain, worker death) is requeued — accepted work is owed until it is
// done or deterministically failed.
const (
	JobQueued     = "queued"
	JobDispatched = "dispatched" // sent to a worker; running or about to
	JobDone       = server.StateDone
	JobFailed     = server.StateFailed
)

// SubmitRequest is the body of POST /v1/jobs on gsched: a gserved
// submission plus the fleet's scheduling envelope. The embedded request
// is forwarded to workers verbatim (minus the envelope), so the
// content-addressed job key is identical on coordinator and worker.
type SubmitRequest struct {
	server.SubmitRequest
	// Tenant names the fair-share account this job bills against
	// ("" = "default"). Each tenant gets a weighted fair share of
	// dispatch slots, not a fixed partition.
	Tenant string `json:"tenant,omitempty"`
	// Weight scales the tenant's fair share (default 1, capped at 100).
	// The first submission naming a tenant fixes its weight.
	Weight int `json:"weight,omitempty"`
	// Priority orders jobs across tenants: higher runs first, and — when
	// preemption is enabled — a higher-priority arrival may preempt a
	// running lower-priority job (checkpoint, requeue, resume). Range
	// [0, 9], default 0.
	Priority int `json:"priority,omitempty"`
}

// JobStatus is one fleet job's externally visible state: the worker's
// terminal status (stats, error, attempts) once finished, plus the
// fleet envelope — where it is, how often it was requeued or preempted.
type JobStatus struct {
	server.JobStatus
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Worker is the id of the worker the job is or was last on.
	Worker string `json:"worker,omitempty"`
	// Requeues counts every return to the queue (worker death, worker
	// drain/cancel, dispatch failure, preemption).
	Requeues int `json:"requeues,omitempty"`
	// Preemptions counts requeues caused specifically by a
	// higher-priority arrival.
	Preemptions int `json:"preemptions,omitempty"`
}

// RegisterRequest is the body of POST /v1/workers: a gserved base URL
// and the number of jobs the coordinator may run on it concurrently.
type RegisterRequest struct {
	URL string `json:"url"`
	// Slots caps concurrent dispatches to this worker (default 1).
	Slots int `json:"slots,omitempty"`
	// ID names the worker; defaults to the URL's host:port (path-safe
	// for the /v1/workers/{id}/... endpoints). Re-registering an
	// existing id updates it in place (same lease, new URL/slots).
	ID string `json:"id,omitempty"`
}

// WorkerStatus is one worker's registry entry.
type WorkerStatus struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	State    string `json:"state"` // alive | draining | dead
	Slots    int    `json:"slots"`
	InFlight int    `json:"in_flight"` // jobs currently dispatched to it
	// LeaseMillis is how long until the lease expires (negative =
	// already expired; the next failed probe sweep marks it dead).
	LeaseMillis int64 `json:"lease_ms"`
	// Dispatched/Completed/Deaths are lifetime counters for this entry.
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	Deaths     int64 `json:"deaths"`
}

// WorkersResponse is GET /v1/workers.
type WorkersResponse struct {
	Workers []WorkerStatus `json:"workers"`
}

// SweepRequest is the body of POST /v1/sweeps.
type SweepRequest struct {
	Jobs []SubmitRequest `json:"jobs"`
}

// SweepResponse reports per-element admission outcomes (POST) or the
// full job inventory (GET).
type SweepResponse struct {
	Jobs     []JobStatus `json:"jobs"`
	Rejected int         `json:"rejected,omitempty"`
}

// TenantStatus is one fair-share account's queue view.
type TenantStatus struct {
	Name    string  `json:"name"`
	Weight  int     `json:"weight"`
	Queued  int     `json:"queued"`
	VTime   float64 `json:"vtime"` // fair-share virtual time consumed
	Started int64   `json:"started"`
}

// Statusz is gsched's GET /statusz introspection snapshot.
type Statusz struct {
	State     string                `json:"state"` // serving | degraded | draining | dead
	Build     server.BuildInfo      `json:"build"`
	Journal   *server.JournalStatus `json:"journal,omitempty"`
	UptimeSec float64               `json:"uptime_sec"`

	Workers []WorkerStatus `json:"workers"`
	Tenants []TenantStatus `json:"tenants"`

	Queued     int `json:"queued"`
	Dispatched int `json:"dispatched"`

	Accepted     int64 `json:"accepted"`
	Deduped      int64 `json:"deduped"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Requeues     int64 `json:"requeues"`
	Preemptions  int64 `json:"preemptions"`
	WorkerDeaths int64 `json:"worker_deaths"`
	Replayed     int64 `json:"replayed"`
	RejectedFull int64 `json:"rejected_full"`
}
