module gpushare

go 1.22
