// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI). Each benchmark runs the corresponding harness
// experiment end to end — workload generation, baseline and sharing
// configurations, the full cycle-level simulation — and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmarks use grid scale 1; the
// reference results in EXPERIMENTS.md use `gexp -exp all -scale 2`.
package gpushare_test

import (
	"fmt"
	"runtime"
	"testing"

	"gpushare"
)

// runExperiment executes one harness experiment per benchmark iteration
// with a cold session (no memoization across iterations) and reports the
// requested cells as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string][2]string) {
	b.Helper()
	var tab *gpushare.ExperimentTable
	for i := 0; i < b.N; i++ {
		s := gpushare.NewExperimentSession(1)
		var err error
		tab, err = s.Experiment(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	for label, rc := range metrics {
		if v, ok := tab.Cell(rc[0], rc[1]); ok {
			b.ReportMetric(v, label)
		} else {
			b.Fatalf("%s: missing cell %s/%s", id, rc[0], rc[1])
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: baseline resident blocks and
// resource wastage for the register- and scratchpad-limited sets.
func BenchmarkFig1(b *testing.B) {
	for _, id := range []string{"fig1a", "fig1b", "fig1c", "fig1d"} {
		id := id
		b.Run(id, func(b *testing.B) {
			switch id {
			case "fig1a":
				runExperiment(b, id, map[string][2]string{"hotspot-blocks": {"hotspot", "Blocks"}})
			case "fig1b":
				runExperiment(b, id, map[string][2]string{"hotspot-waste%": {"hotspot", "Wastage%"}})
			case "fig1c":
				runExperiment(b, id, map[string][2]string{"lavaMD-blocks": {"lavaMD", "Blocks"}})
			default:
				runExperiment(b, id, map[string][2]string{"lavaMD-waste%": {"lavaMD", "Wastage%"}})
			}
		})
	}
}

// BenchmarkFig8Blocks regenerates Figure 8(a)/(b): resident blocks under
// 90% sharing.
func BenchmarkFig8Blocks(b *testing.B) {
	b.Run("fig8a", func(b *testing.B) {
		runExperiment(b, "fig8a", map[string][2]string{
			"hotspot-shared-blocks": {"hotspot", "Shared-OWF-Unroll-Dyn"},
		})
	})
	b.Run("fig8b", func(b *testing.B) {
		runExperiment(b, "fig8b", map[string][2]string{
			"lavaMD-shared-blocks": {"lavaMD", "Shared-OWF"},
		})
	})
}

// BenchmarkFig8RegIPC regenerates Figure 8(c): register-sharing IPC
// improvement over Unshared-LRR for all of Set-1.
func BenchmarkFig8RegIPC(b *testing.B) {
	runExperiment(b, "fig8c", map[string][2]string{
		"hotspot-gain%": {"hotspot", "Improvement%"},
		"MUM-gain%":     {"MUM", "Improvement%"},
		"LIB-gain%":     {"LIB", "Improvement%"},
	})
}

// BenchmarkFig8SmemIPC regenerates Figure 8(d): scratchpad-sharing IPC
// improvement over Unshared-LRR for all of Set-2.
func BenchmarkFig8SmemIPC(b *testing.B) {
	runExperiment(b, "fig8d", map[string][2]string{
		"lavaMD-gain%": {"lavaMD", "Improvement%"},
		"SRAD2-gain%":  {"SRAD2", "Improvement%"},
	})
}

// BenchmarkFig9RegAblation regenerates Figure 9(a): the four-step
// optimization ablation for register sharing.
func BenchmarkFig9RegAblation(b *testing.B) {
	runExperiment(b, "fig9a", map[string][2]string{
		"hotspot-noopt%": {"hotspot", "Shared-LRR-NoOpt"},
		"hotspot-owf%":   {"hotspot", "Shared-OWF-Unroll-Dyn"},
	})
}

// BenchmarkFig9SmemAblation regenerates Figure 9(b): scratchpad sharing
// with and without OWF.
func BenchmarkFig9SmemAblation(b *testing.B) {
	runExperiment(b, "fig9b", map[string][2]string{
		"SRAD2-noopt%": {"SRAD2", "Shared-LRR-NoOpt"},
		"SRAD2-owf%":   {"SRAD2", "Shared-OWF"},
	})
}

// BenchmarkFig9Cycles regenerates Figure 9(c)/(d): stall and idle cycle
// decreases under sharing.
func BenchmarkFig9Cycles(b *testing.B) {
	b.Run("fig9c", func(b *testing.B) {
		runExperiment(b, "fig9c", map[string][2]string{
			"hotspot-stall-dec%": {"hotspot", "StallDecrease%"},
		})
	})
	b.Run("fig9d", func(b *testing.B) {
		runExperiment(b, "fig9d", map[string][2]string{
			"lavaMD-idle-dec%": {"lavaMD", "IdleDecrease%"},
		})
	})
}

// BenchmarkFig10 regenerates Figure 10: sharing vs the GTO and two-level
// baselines.
func BenchmarkFig10(b *testing.B) {
	for _, id := range []string{"fig10a", "fig10b", "fig10c", "fig10d"} {
		id := id
		row := "hotspot"
		if id == "fig10b" || id == "fig10d" {
			row = "lavaMD"
		}
		b.Run(id, func(b *testing.B) {
			runExperiment(b, id, map[string][2]string{
				fmt.Sprintf("%s-gain%%", row): {row, "Improvement%"},
			})
		})
	}
}

// BenchmarkFig11 regenerates Figure 11: sharing vs a baseline given
// twice the physical resource.
func BenchmarkFig11(b *testing.B) {
	b.Run("fig11a", func(b *testing.B) {
		runExperiment(b, "fig11a", map[string][2]string{
			"hotspot-2xreg-IPC":  {"hotspot", "Unshared-LRR-Reg#65536"},
			"hotspot-shared-IPC": {"hotspot", "Shared-OWF-Unroll-Dyn-Reg#32768"},
		})
	})
	b.Run("fig11b", func(b *testing.B) {
		runExperiment(b, "fig11b", map[string][2]string{
			"lavaMD-2xsmem-IPC": {"lavaMD", "Unshared-LRR-ShMem#32K"},
			"lavaMD-shared-IPC": {"lavaMD", "Shared-OWF-ShMem#16K"},
		})
	})
}

// BenchmarkFig12 regenerates Figure 12: Set-3 across scheduler/sharing
// combinations (sharing must be inert).
func BenchmarkFig12(b *testing.B) {
	b.Run("fig12a", func(b *testing.B) {
		runExperiment(b, "fig12a", map[string][2]string{
			"BFS-lrr-IPC": {"BFS", "Unshared-LRR"},
			"BFS-owf-IPC": {"BFS", "Shared-OWF-Unroll-Dyn"},
		})
	})
	b.Run("fig12b", func(b *testing.B) {
		runExperiment(b, "fig12b", map[string][2]string{
			"NN-lrr-IPC": {"NN", "Unshared-LRR"},
			"NN-owf-IPC": {"NN", "Shared-OWF"},
		})
	})
}

// BenchmarkTable5 regenerates Table V: IPC vs register sharing percentage.
func BenchmarkTable5(b *testing.B) {
	runExperiment(b, "table5", map[string][2]string{
		"hotspot-0%-IPC":  {"hotspot", "0%"},
		"hotspot-90%-IPC": {"hotspot", "90%"},
	})
}

// BenchmarkTable6 regenerates Table VI: resident blocks vs register
// sharing percentage (matches the paper exactly).
func BenchmarkTable6(b *testing.B) {
	runExperiment(b, "table6", map[string][2]string{
		"hotspot-90%-blocks": {"hotspot", "90%"},
		"LIB-90%-blocks":     {"LIB", "90%"},
	})
}

// BenchmarkTable7 regenerates Table VII: IPC vs scratchpad sharing
// percentage.
func BenchmarkTable7(b *testing.B) {
	runExperiment(b, "table7", map[string][2]string{
		"lavaMD-0%-IPC":  {"lavaMD", "0%"},
		"lavaMD-90%-IPC": {"lavaMD", "90%"},
	})
}

// BenchmarkTable8 regenerates Table VIII: resident blocks vs scratchpad
// sharing percentage (matches the paper exactly).
func BenchmarkTable8(b *testing.B) {
	runExperiment(b, "table8", map[string][2]string{
		"lavaMD-90%-blocks": {"lavaMD", "90%"},
		"NW1-90%-blocks":    {"NW1", "90%"},
	})
}

// BenchmarkHWOverhead regenerates the Section V storage-overhead
// formulas.
func BenchmarkHWOverhead(b *testing.B) {
	runExperiment(b, "hw", map[string][2]string{
		"register-bits-per-SM":   {"register", "PerSM"},
		"scratchpad-bits-per-SM": {"scratchpad", "PerSM"},
	})
}

// BenchmarkRunnerParallel measures the simulation farm: the same
// six-job matrix executed sequentially (-j 1) and with one worker per
// CPU. Each iteration uses a fresh runner (cold memory cache, no disk
// cache), so the ratio of the two sub-benchmarks' ns/op is the
// parallel speedup; both report simcycles/sec for throughput.
func BenchmarkRunnerParallel(b *testing.B) {
	jobs := make([]gpushare.SimJob, 0, 6)
	for _, name := range []string{"gaussian", "backprop2", "NN"} {
		cfg := gpushare.DefaultConfig()
		jobs = append(jobs, gpushare.SimJob{Workload: name, Config: cfg, Scale: 1})
		shared := cfg
		shared.Sharing = gpushare.ShareRegisters
		shared.Sched = gpushare.SchedOWF
		shared.T = 0.1
		jobs = append(jobs, gpushare.SimJob{Workload: name, Config: shared, Scale: 1})
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"j1", 1},
		{fmt.Sprintf("jNumCPU-%d", runtime.NumCPU()), runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				r := gpushare.NewRunner(gpushare.RunnerOptions{Workers: bc.workers})
				for _, res := range r.RunAll(jobs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
					cycles += res.Stats.Cycles
				}
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/sec")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles and thread-instructions per wall second on one representative
// workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := gpushare.WorkloadByName("hotspot")
	if err != nil {
		b.Fatal(err)
	}
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		sim, err := gpushare.NewSimulator(gpushare.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		inst := spec.Build(1)
		inst.Setup(sim.Mem)
		st, err := sim.Run(inst.Launch)
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
		instrs += st.TotalThreadInstrs()
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/op")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "thread-instrs/sec")
}
