# Generates EXPERIMENTS.md from experiments_output.txt (the output of
#   go run ./cmd/gexp -exp all -scale 2 -paper
# ) plus per-experiment commentary. Checked in for reproducibility of the
# document itself; the numbers come exclusively from the harness.
import re
import sys

OUT = "experiments_output.txt"  # run from the repository root

commentary = {
"ext-earlyrelease": """**Extension (§VIII item 1).** On the paper's own proxies the shared
registers stay live until the warp's last instructions, so early release
fires only in the epilogue and leaves IPC unchanged — evidence for the
paper's remark that the analysis wants *instruction reordering* next to
it. The `epilogue` microbenchmark (short shared phase, long register-dead
memory-bound tail) isolates the mechanism: releases let the partner block
overlap with the whole tail.""",
"ext-l1policy": """**Extension (§VIII item 2).** Register-sharing gains under three L1
replacement policies. The gains survive all three; LRU and FIFO behave
almost identically on the streaming-plus-slice access mix, while random
replacement softens both the baseline and the shared configuration.""",
"ext-launchlat": """**Sensitivity.** The staged non-owner block of a sharing pair hides the
CTA dispatch gap, so the sharing gain grows with the latency; at zero
latency the remaining gain is the extra thread-level parallelism alone.""",
"ext-rfbanks": """**Fidelity knob.** The optional register-file bank-conflict model of
Fig. 3 (off by default, like GPGPU-Sim's PTX mode) lowers absolute IPC a
little on register-tiled kernels but leaves the sharing gains intact —
the paper's conclusions do not hinge on RF banking.""",
"ext-mshr": """**Sensitivity.** The divergent workloads are MSHR-bound: baseline IPC
scales with outstanding-miss capacity, which is why the default of 32 is
a load-bearing model choice (GPGPU-Sim's default).""",
"fig1a": "Baseline resident blocks for the register-limited set — matches Fig. 1(a) exactly.",
"fig1b": """Register under-utilization per SM. The hotspot example of §I: 3 resident
blocks x 9216 registers leaves 5120 of 32768 registers (15.6%) unused.""",
"fig1c": "Baseline resident blocks for the scratchpad-limited set — matches Fig. 1(c) exactly.",
"fig1d": "Scratchpad under-utilization per SM, the analogue of Fig. 1(d).",
"fig8a": "Resident blocks, baseline vs register sharing at 90% — matches the paper exactly (also the thread/block caps: backprop/hotspot/MUM/mri-q saturate the 1536-thread limit, LIB/sgemm the 8-block limit).",
"fig8b": "Resident blocks, baseline vs scratchpad sharing at 90% — matches the paper exactly.",
"fig8c": """The headline register-sharing result. Shape vs the paper: the big
gainers (hotspot, MUM, b+tree, stencil — paper: 21.8/24.1/12.0/23.5) gain
double digits here too; backprop and sgemm gain modestly; LIB (+0.8 in
the paper) and mri-q (-0.7 in the paper) sit at the flat end. Our
stencil overshoots and our MUM/hotspot land slightly under the paper's
values; the ordering and the flat cases agree.""",
"fig8d": """The headline scratchpad-sharing result: every Set-2 workload gains, and
lavaMD — whose accesses never enter the shared region, the paper's
explanation for its ~30% — is the top gainer here as well. Our gains for
lavaMD/SRAD1/SRAD2 run hotter than the paper's (our baseline SMs at two
resident blocks are more starved than GPGPU-Sim's were).""",
"fig9a": """Register-sharing optimization ablation. As in the paper, the full
OWF+Unroll+Dyn configuration dominates for nearly every workload, and the
no-optimization column is much weaker (the paper's MUM: -0.15% NoOpt vs
+24.1% full; ours: +7.5% vs +19.5%). Two divergences worth noting: our
unroll deltas are small because the proxies' prologues are short, and our
dyn column only separates from unroll on workloads whose non-owner warps
reach a memory instruction before their first shared-register access
(b+tree, by construction).""",
"fig9b": """Scratchpad ablation: OWF improves on plain LRR sharing for 6 of 7
workloads (the paper reports the same pattern, including SRAD2's jump —
5.3% NoOpt vs 25.7% OWF in the paper, 25.2% vs 32.2% here). SRAD1 is the
exception in both (paper: better without OWF).""",
"fig9c": """Cycle-breakdown changes under register sharing. Following the paper's
definitions, a no-issue cycle with every warp waiting on an in-flight
result is *idle* ("all the available warps are issued, but no warp is
ready"); structural blocks (ports, locks, MSHRs, the dyn gate) are
*stalls*. Sharing's extra warps absorb idle cycles (32-92% reductions here; the
paper reports reductions up to 99% for all applications) while lock
waits and cache pressure push stalls up for a few: ours b+tree and
mri-q, the paper's b+tree, stencil and mri-q — the paper likewise
attributes mri-q's stall increase to extra L1 misses.""",
"fig9d": "Same breakdown for scratchpad sharing; the compute-bound Set-2 workloads (lavaMD, SRAD1/2) shed most of their idle cycles.",
"fig10a": """Register sharing vs a GTO baseline. The paper reports gains of at most
3.9% here — i.e. most of Fig. 8(c)'s improvement is OWF behaving like
GTO. We reproduce that conclusion: against GTO the sharing deltas are
single-digit (some slightly negative).""",
"fig10b": "Scratchpad sharing retains its gains over GTO (paper: up to 30%), since they come from real extra blocks rather than scheduling.",
"fig10c": "Register sharing vs the two-level baseline (paper: up to 27.2%).",
"fig10d": "Scratchpad sharing vs the two-level baseline (paper: up to 27.1%).",
"fig11a": """Sharing at 32K registers vs an unshared LRR baseline given 64K. The
paper finds sharing better in 5 of 8 with the doubled-register baseline
winning sgemm, b+tree and LIB; here sharing wins 6 of 8 and the baseline
wins exactly sgemm and LIB — the same two apps for which the paper
explains the baseline's advantage by its higher resident-block count.""",
"fig11b": "Scratchpad sharing at 16KB vs an unshared baseline at 32KB, the analogue of Fig. 11(b).",
"fig12a": """Set-3 under register sharing: the dispatcher launches no pairs, so
Shared-LRR ≡ Unshared-LRR and Shared-GTO ≡ Unshared-GTO *exactly*, and
OWF (all warps unshared, ordered by dynamic id) ≡ GTO — the paper's
precise observation about Fig. 12.""",
"fig12b": "Same for scratchpad sharing.",
"table5": """IPC across the register-sharing sweep. Structure matches Table V: 0%,
10% and 30% are identical wherever the block count is unchanged (the
paper notes all applications behave the same at 0% and 10%), and IPC
moves where Table VI's block counts move. Shape echoes: hotspot dips at
50% before recovering at 90% (paper: 489→475→503), stencil is slightly
worse at 90% than at 0% (paper: 448→441).""",
"table6": "Resident blocks across the register-sharing sweep — **matches Table VI cell for cell** (pure Eq. 4 occupancy math; enforced by TestBlockSweepsMatchPaperExactly).",
"table7": """IPC across the scratchpad sweep. lavaMD's signature jump *only at 90%*
(paper: 452→579) reproduces, as does SRAD2's (63.5→68.3 in the paper).
Our NW1/NW2 rise slightly with sharing where the paper's decline
slightly; both effects are within a few percent.""",
"table8": "Resident blocks across the scratchpad sweep — **matches Table VIII cell for cell** (enforced by tests).",
"hw": """Section V storage-overhead formulas at the Table I configuration
(T=8 blocks, W=48 warps, N=14 SMs): 273 bits/SM for register sharing and
93 bits/SM for scratchpad sharing — a few hundred bytes for the whole
GPU, supporting the paper's "minimal hardware" claim.""",
}

def main():
    text = open(OUT).read()
    # Split into experiment sections.
    sections = {}
    cur = None
    for line in text.splitlines():
        m = re.match(r"== (\S+): ", line)
        if m:
            cur = m.group(1)
            sections[cur] = []
        if cur and not line.startswith("EXIT="):
            sections[cur].append(line)

    order = [
        "fig1a","fig1b","fig1c","fig1d",
        "fig8a","fig8b","fig8c","fig8d",
        "fig9a","fig9b","fig9c","fig9d",
        "fig10a","fig10b","fig10c","fig10d",
        "fig11a","fig11b","fig12a","fig12b",
        "table5","table6","table7","table8","hw",
        "ext-earlyrelease","ext-l1policy","ext-launchlat","ext-mshr","ext-rfbanks",
    ]

    with open("EXPERIMENTS.md","w") as f:
        f.write(HEADER)
        for id_ in order:
            if id_ not in sections:
                print("missing section", id_, file=sys.stderr)
                continue
            body = "\n".join(sections[id_]).rstrip()
            f.write(f"## {id_}\n\n")
            if id_ in commentary:
                f.write(commentary[id_].strip() + "\n\n")
            f.write("```\n" + body + "\n```\n\n")
    print("wrote EXPERIMENTS.md")

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (§VI), regenerated by
this repository's harness, plus the `ext-*` studies that implement the
paper's §VIII future-work items. All numbers below were produced by

```
go run ./cmd/gexp -exp all -scale 2 -paper
```

(grid scale 2, the reference experiment scale; the raw output is
`experiments_output.txt`). Where the paper quotes a number — in its
tables or its prose — it appears next to or below the measured values.

**Reading guidance.** Resident-block counts (fig1, fig8a/b, table6,
table8) and the Set-3 equivalences (fig12) are *exact* reproductions:
they depend only on the paper's occupancy equations, which this
repository implements directly, and the test suite pins them to the
paper's values. IPC-derived numbers are *shape* reproductions: the
substrate here is a from-scratch cycle-level simulator and the 19
benchmarks are synthetic proxies matching the paper's resource
footprints and qualitative behaviour (see DESIGN.md), so who wins, in
which direction, and roughly by how much is meaningful — absolute IPC is
not expected to match the authors' GPGPU-Sim testbed.

Known divergences, called out in context below: our stencil and the
Set-2 compute-bound workloads (lavaMD, SRAD1) gain more than the paper's
versions; our unroll/dyn ablation columns move less than the paper's
(short proxy prologues); NW1/NW2 trend slightly up across the sweep
where the paper's trend slightly down.

"""

if __name__ == "__main__":
    main()
