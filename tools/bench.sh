#!/bin/sh
# Microbenchmark runner and perf-regression gate.
#
#     ./tools/bench.sh            # run benches, gate allocs/op against
#                                 # BENCH_baseline.json, report the
#                                 # parallel-engine speedup
#     ./tools/bench.sh -quick     # smoke mode for check.sh: fewer
#                                 # iterations, same allocs/op gate
#     ./tools/bench.sh -record    # rewrite BENCH_baseline.json from the
#                                 # current run
#
# The gate is allocation counts plus ns/op drift: allocs/op is stable
# across machines and load, so check.sh can fail hard on any growth;
# ns/op is gated with a tolerance (15% in full mode, where -benchtime
# gives stable numbers; 75% in -quick mode, whose few iterations are
# noisy) so a perf-optimisation PR cannot silently give its win back.
# The workers=1 vs workers=8 speedup is reported for humans.
set -eu

cd "$(dirname "$0")/.."
baseline=BENCH_baseline.json

mode="${1-}"
microtime="2s"
e2etime="3x"
nstol=15
if [ "$mode" = "-quick" ]; then
    # Microbenchmarks are nanosecond-scale: 100k iterations still run in
    # well under a second each, and fewer is too noisy to gate ns/op on.
    microtime="100000x"
    e2etime="1x"
    nstol=50
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== microbenchmarks (smcore SM tick, scheduler ranking, mem system tick + idle window, checkpoint roundtrip)"
go test -run '^$' -bench 'BenchmarkSMTick$|BenchmarkSMTickManyWarps$|BenchmarkSchedOrder$|BenchmarkMemSystemTick$|BenchmarkMemSystemTickIdle|BenchmarkCheckpointRoundtrip$' \
    -benchmem -benchtime "$microtime" ./internal/smcore/ ./internal/sched/ ./internal/mem/ ./internal/checkpoint/ | tee "$out"

echo "== end-to-end engine (full hotspot simulation per op; two-tenant co-residency per op; blocked-heavy per-SM sleep per op; compute-bound mem-sleep per op)"
go test -run '^$' -bench 'BenchmarkRunParallelSMs|BenchmarkCoResident|BenchmarkSMSleepMemBound|BenchmarkComputeBound' \
    -benchmem -benchtime "$e2etime" -timeout 30m ./internal/gpu/ | tee -a "$out"

# Normalize benchmark lines into "name ns b allocs" rows. Columns are
# located by their unit suffix, not position: a benchmark that calls
# b.SetBytes emits an extra MB/s column between ns/op and B/op, which a
# fixed-field parse would silently record as B/op and allocs/op (that
# bug once put 237601 "allocs" of 608 "bytes" — actually B/op and MB/s
# — into the checkpoint-roundtrip baseline).
rows=$(awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") b = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "" && b != "" && allocs != "")
        printf "%s %.0f %.0f %.0f\n", name, ns, b, allocs
}' "$out")

if [ "$mode" = "-record" ]; then
    {
        echo '{'
        echo '  "comment": "Microbenchmark baseline recorded by tools/bench.sh -record. check.sh and bench.sh gate current allocs/op (no growth) and ns/op (bounded drift) against these numbers.",'
        echo "  \"goos\": \"$(go env GOOS)\","
        echo "  \"goarch\": \"$(go env GOARCH)\","
        echo '  "benchmarks": {'
        echo "$rows" | awk '{
            printf "%s    \"%s\": {\"ns_op\": %.0f, \"b_op\": %.0f, \"allocs_op\": %.0f}",
                (NR > 1 ? ",\n" : ""), $1, $2, $3, $4
        }'
        echo ''
        echo '  }'
        echo '}'
    } >"$baseline"
    echo "recorded $(echo "$rows" | wc -l | tr -d ' ') benchmarks to $baseline"
    exit 0
fi

# Allocation gate: every benchmark present in the baseline must not
# allocate more per op than it did when the baseline was recorded. 1%
# headroom keeps the gate exact for the zero-alloc microbenchmarks while
# absorbing iteration-count amortization jitter in the end-to-end run
# (its several hundred thousand allocs/op include one-time setup).
fail=0
for name in $(echo "$rows" | awk '{print $1}'); do
    base=$(sed -n "s|.*\"$name\": {[^}]*\"allocs_op\": \([0-9]*\).*|\1|p" "$baseline")
    [ -n "$base" ] || continue
    cur=$(echo "$rows" | awk -v n="$name" '$1 == n {print $4}')
    limit=$((base + base / 100))
    if [ "$cur" -gt "$limit" ]; then
        echo "FAIL: $name allocs/op regressed: $cur > baseline $base" >&2
        fail=1
    else
        echo "ok:   $name allocs/op $cur (baseline $base)"
    fi
done

# Wall-time gate: ns/op may not drift more than $nstol% above the
# recorded baseline. The two-tenant end-to-end benchmark is exempt (its
# wall time depends on machine load); the multi-worker parallel-engine
# legs are additionally exempt on single-CPU hosts, where the worker
# pool only adds barrier overhead and its wall time says nothing about
# scaling (the allocs/op gate above still applies to them).
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
for name in $(echo "$rows" | awk '{print $1}'); do
    case "$name" in
    BenchmarkCoResident*) continue ;;
    BenchmarkRunParallelSMs/workers=1) ;;
    BenchmarkRunParallelSMs*) [ "$ncpu" -lt 2 ] && continue ;;
    esac
    base=$(sed -n "s|.*\"$name\": {[^}]*\"ns_op\": \([0-9]*\).*|\1|p" "$baseline")
    [ -n "$base" ] && [ "$base" -gt 0 ] || continue
    cur=$(echo "$rows" | awk -v n="$name" '$1 == n {printf "%.0f", $2}')
    limit=$((base + base * nstol / 100))
    if [ "$cur" -gt "$limit" ]; then
        echo "FAIL: $name ns/op regressed: $cur > baseline $base +${nstol}%" >&2
        fail=1
    else
        echo "ok:   $name ns/op $cur (baseline $base, limit $limit)"
    fi
done

# Parallel-engine speedup, for humans (not gated: wall time depends on
# machine and load; the determinism tests gate correctness instead).
echo "$rows" | awk '
    $1 == "BenchmarkRunParallelSMs/workers=1" { w1 = $2 }
    $1 == "BenchmarkRunParallelSMs/workers=8" { w8 = $2 }
    END { if (w1 > 0 && w8 > 0)
        printf "parallel engine: workers=8 is %.2fx faster than workers=1\n", w1 / w8 }
'
if [ "$ncpu" -lt 2 ]; then
    echo "note: only $ncpu CPU online — parallel speedup is not measurable here (expect ~1.0x; the workers=8 number validates barrier overhead, not scaling)"
fi

exit $fail
