#!/bin/sh
# Pre-PR gate: vet + formatting + build + race-checked tests for the
# concurrency-bearing packages (the runner's worker pool / singleflight,
# the session layer, and the gserved daemon + client — including the
# admission-saturation test), a fuzz smoke pass over the assembler,
# ISA evaluator, and checkpoint decoder, an invariant-audited tier-1
# run, a gserved smoke test (start on a random port, submit a job,
# drain via SIGTERM), a crash-recovery smoke (kill -9 mid-job,
# journal replay and checkpoint resume after restart), and a gsched
# fleet smoke (coordinator + two workers, kill -9 one worker
# mid-sweep, every job finishes byte-identical to a single-node run).
# Run from the repository root:
#
#     ./tools/check.sh          # race tests in -short mode (~seconds)
#     ./tools/check.sh -full    # race tests without -short
set -eu

cd "$(dirname "$0")/.."

short="-short"
[ "${1-}" = "-full" ] && short=""

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race (runner, harness)"
go test -race $short ./internal/runner/ ./internal/harness/

echo "== go test -race (server saturation + drain, client retries)"
go test -race $short ./internal/server/ ./internal/client/

echo "== go test -race (fleet coordinator, wal journal)"
go test -race $short ./internal/fleet/ ./internal/wal/

echo "== go test -race (parallel cycle engine determinism, per-SM sleep, event-driven mem tick)"
go test -race $short -timeout 30m -run 'TestEngineDeterminism|TestLaunchQueue|TestSMSleep|TestMemSleep' ./internal/gpu/

echo "== benchmark smoke + allocs/op gate (tools/bench.sh -quick)"
./tools/bench.sh -quick

echo "== fuzz smoke (asm parser, ISA evaluator, checkpoint decoder)"
go test -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm/
go test -fuzz=FuzzEval -fuzztime=10s ./internal/isa/
go test -fuzz=FuzzCheckpointDecode -fuzztime=10s ./internal/checkpoint/

echo "== invariant-audited tier-1 (GPUSHARE_INVARIANT_STRIDE=256)"
GPUSHARE_INVARIANT_STRIDE=256 go test $short ./internal/gpu/ ./internal/workloads/ ./internal/harness/

echo "== gserved smoke test (submit, statusz, SIGTERM drain)"
smoketmp=$(mktemp -d)
smokepid=""
w1pid=""
w2pid=""
basepid=""
schedpid=""
cleanup_smoke() {
    for p in $smokepid $w1pid $w2pid $basepid $schedpid; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$smoketmp"
}
trap cleanup_smoke EXIT

go build -o "$smoketmp/gserved" ./cmd/gserved
"$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$smoketmp/cache" \
    >"$smoketmp/out.log" 2>&1 &
smokepid=$!

# The daemon prints "gserved: listening on <addr>" as its startup
# handshake; wait for it (5s budget).
addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's/^gserved: listening on //p' "$smoketmp/out.log")
    [ -n "$addr" ] && break
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "gserved did not start:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
fi

code=$(curl -s -o "$smoketmp/job.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/jobs?wait=1" \
    -d '{"workload":"gaussian","scale":1}')
if [ "$code" != 200 ]; then
    echo "gserved submit: HTTP $code" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
fi
grep -q '"state":"done"' "$smoketmp/job.json" || {
    echo "gserved job did not finish:" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
}
grep -q '"Cycles"' "$smoketmp/job.json" || {
    echo "gserved response carries no stats:" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
}

code=$(curl -s -o "$smoketmp/statusz.json" -w '%{http_code}' "http://$addr/statusz")
if [ "$code" != 200 ]; then
    echo "gserved statusz: HTTP $code" >&2
    exit 1
fi
grep -q '"accepted":1' "$smoketmp/statusz.json" || {
    echo "gserved statusz does not count the job:" >&2
    cat "$smoketmp/statusz.json" >&2
    exit 1
}

# SIGTERM must drain and exit 0 within 10s.
kill -TERM "$smokepid"
i=0
while [ $i -lt 100 ]; do
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if kill -0 "$smokepid" 2>/dev/null; then
    echo "gserved did not exit within 10s of SIGTERM" >&2
    exit 1
fi
rc=0
wait "$smokepid" || rc=$?
smokepid=""
if [ "$rc" != 0 ]; then
    echo "gserved drain exited $rc:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
fi
grep -q '^gserved: drained' "$smoketmp/out.log" || {
    echo "gserved did not report a clean drain:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
}

echo "== gserved crash-recovery smoke (kill -9 mid-job, journal replay)"
# Start with a job journal and mid-simulation checkpoints, submit a
# multi-second job, kill -9 the daemon mid-run, and verify that a fresh
# daemon replays the journal and finishes the job.
start_crash_daemon() {
    "$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$smoketmp/cache2" \
        -journal "$smoketmp/journal.jsonl" \
        -checkpoint-dir "$smoketmp/ckpt" -checkpoint-stride 20000 \
        >"$1" 2>&1 &
    smokepid=$!
    addr=""
    i=0
    while [ $i -lt 50 ]; do
        addr=$(sed -n 's/^gserved: listening on //p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$smokepid" 2>/dev/null || break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "gserved did not start:" >&2
        cat "$1" >&2
        exit 1
    fi
}

start_crash_daemon "$smoketmp/crash1.log"
code=$(curl -s -o "$smoketmp/crashjob.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/jobs" \
    -d '{"workload":"hotspot","scale":2}')
if [ "$code" != 202 ]; then
    echo "gserved crash-smoke submit: HTTP $code" >&2
    cat "$smoketmp/crashjob.json" >&2
    exit 1
fi
key=$(sed -n 's/.*"key":"\([^"]*\)".*/\1/p' "$smoketmp/crashjob.json")
if [ -z "$key" ]; then
    echo "gserved crash-smoke submit returned no job key:" >&2
    cat "$smoketmp/crashjob.json" >&2
    exit 1
fi

# Kill the daemon while the simulation is in flight (the job takes a
# couple of seconds; the kill lands well inside it).
sleep 0.7
kill -9 "$smokepid"
wait "$smokepid" 2>/dev/null || true
smokepid=""

# The write-ahead rule: the accept record must be durable, and no done
# record may exist for a job that never finished.
grep -q "\"op\":\"accept\",\"key\":\"$key\"" "$smoketmp/journal.jsonl" || {
    echo "journal is missing the accept record for the killed job" >&2
    cat "$smoketmp/journal.jsonl" >&2
    exit 1
}
if grep -q "\"op\":\"done\",\"key\":\"$key\"" "$smoketmp/journal.jsonl"; then
    echo "journal marks the killed job done before it finished" >&2
    cat "$smoketmp/journal.jsonl" >&2
    exit 1
fi

# Restart: the journal replays the unfinished job, and polling its key
# (computed by the dead process) must reach "done" (60s budget).
start_crash_daemon "$smoketmp/crash2.log"
i=0
done=""
while [ $i -lt 600 ]; do
    curl -s -o "$smoketmp/crashpoll.json" "http://$addr/v1/jobs/$key" || true
    if grep -q '"state":"done"' "$smoketmp/crashpoll.json"; then
        done=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$done" ]; then
    echo "replayed job did not finish after restart:" >&2
    cat "$smoketmp/crashpoll.json" >&2
    cat "$smoketmp/crash2.log" >&2
    exit 1
fi
grep -q '"Cycles"' "$smoketmp/crashpoll.json" || {
    echo "replayed job carries no stats:" >&2
    cat "$smoketmp/crashpoll.json" >&2
    exit 1
}
# The done record is fsync'd just after the job state flips, so give
# statusz a moment to show the journal fully retired.
i=0
while [ $i -lt 20 ]; do
    curl -s -o "$smoketmp/crashstatusz.json" "http://$addr/statusz"
    grep -q '"pending":0' "$smoketmp/crashstatusz.json" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q '"replayed":1' "$smoketmp/crashstatusz.json" || {
    echo "statusz does not report the journal replay:" >&2
    cat "$smoketmp/crashstatusz.json" >&2
    exit 1
}
grep -q '"pending":0' "$smoketmp/crashstatusz.json" || {
    echo "journal still has pending records after the job finished:" >&2
    cat "$smoketmp/crashstatusz.json" >&2
    exit 1
}

kill -TERM "$smokepid"
i=0
while [ $i -lt 100 ]; do
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
rc=0
wait "$smokepid" || rc=$?
smokepid=""
if [ "$rc" != 0 ]; then
    echo "gserved crash-smoke drain exited $rc:" >&2
    cat "$smoketmp/crash2.log" >&2
    exit 1
fi

echo "== gsched fleet smoke (2 workers, kill -9 one mid-sweep, byte-identical results)"
# Start a coordinator over two workers sharing a checkpoint directory,
# submit a four-job sweep whose first two jobs run for seconds, kill -9
# one worker while both are mid-job, and verify that every job still
# reaches done with stats byte-identical to a fresh single-node run.
command -v jq >/dev/null 2>&1 || {
    echo "fleet smoke needs jq for the byte-identical stats comparison" >&2
    exit 1
}
go build -o "$smoketmp/gsched" ./cmd/gsched

start_fleet_worker() { # $1 = log file, $2 = cache dir
    "$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$2" \
        -checkpoint-dir "$smoketmp/fleetckpt" -checkpoint-stride 20000 \
        >"$1" 2>&1 &
    wpid=$!
    addr=""
    i=0
    while [ $i -lt 50 ]; do
        addr=$(sed -n 's/^gserved: listening on //p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$wpid" 2>/dev/null || break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "fleet worker did not start:" >&2
        cat "$1" >&2
        exit 1
    fi
}

start_fleet_worker "$smoketmp/w1.log" "$smoketmp/fleetcache1"
w1pid=$wpid
w1addr=$addr
start_fleet_worker "$smoketmp/w2.log" "$smoketmp/fleetcache2"
w2pid=$wpid
w2addr=$addr

"$smoketmp/gsched" -addr 127.0.0.1:0 -lease 1s \
    -worker "http://$w1addr" -worker "http://$w2addr" \
    -journal "$smoketmp/fleetjournal.jsonl" \
    >"$smoketmp/gsched.log" 2>&1 &
schedpid=$!
schedaddr=""
i=0
while [ $i -lt 50 ]; do
    schedaddr=$(sed -n 's/^gsched: listening on //p' "$smoketmp/gsched.log")
    [ -n "$schedaddr" ] && break
    kill -0 "$schedpid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$schedaddr" ]; then
    echo "gsched did not start:" >&2
    cat "$smoketmp/gsched.log" >&2
    exit 1
fi

# The first two jobs take ~5s each, so with one slot per worker both
# workers are mid-job when the kill lands.
sweep='{"jobs":[{"workload":"hotspot","scale":2},{"workload":"stencil","scale":2},{"workload":"sgemm","scale":2},{"workload":"gaussian","scale":2}]}'
code=$(curl -s -o "$smoketmp/sweep.json" -w '%{http_code}' \
    -X POST "http://$schedaddr/v1/sweeps" -d "$sweep")
if [ "$code" != 200 ]; then
    echo "gsched sweep submit: HTTP $code" >&2
    cat "$smoketmp/sweep.json" >&2
    exit 1
fi
if [ "$(jq -r '.rejected // 0' "$smoketmp/sweep.json")" != 0 ]; then
    echo "gsched sweep rejected jobs:" >&2
    cat "$smoketmp/sweep.json" >&2
    exit 1
fi
keys=$(jq -r '.jobs[].key' "$smoketmp/sweep.json")

sleep 0.7
kill -9 "$w1pid"
wait "$w1pid" 2>/dev/null || true
w1pid=""

# Every job must still reach done (shared 120s budget across the sweep;
# the survivor re-runs the orphan, resuming from its checkpoint trail).
i=0
for key in $keys; do
    jobdone=""
    while [ $i -lt 1200 ]; do
        curl -s -o "$smoketmp/fleetjob_$key.json" \
            "http://$schedaddr/v1/jobs/$key" || true
        if grep -q '"state":"done"' "$smoketmp/fleetjob_$key.json"; then
            jobdone=1
            break
        fi
        if grep -q '"state":"failed"' "$smoketmp/fleetjob_$key.json"; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$jobdone" ]; then
        echo "fleet job $key did not finish after the worker kill:" >&2
        cat "$smoketmp/fleetjob_$key.json" >&2
        cat "$smoketmp/gsched.log" >&2
        exit 1
    fi
done

# The coordinator must have noticed the death and requeued the orphan,
# and the queue journal must be fully retired once everything is done.
i=0
while [ $i -lt 50 ]; do
    curl -s -o "$smoketmp/fleetstatusz.json" "http://$schedaddr/statusz"
    jq -e '.journal.pending == 0' "$smoketmp/fleetstatusz.json" >/dev/null && break
    sleep 0.1
    i=$((i + 1))
done
jq -e '.worker_deaths >= 1 and .requeues >= 1 and .completed == 4 and .journal.pending == 0' \
    "$smoketmp/fleetstatusz.json" >/dev/null || {
    echo "gsched statusz does not reflect the worker death and recovery:" >&2
    cat "$smoketmp/fleetstatusz.json" >&2
    exit 1
}

# Ground truth: a fresh single-node gserved (cold cache, no
# checkpoints) must produce byte-identical stats for every job.
"$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$smoketmp/fleetcache3" \
    >"$smoketmp/base.log" 2>&1 &
basepid=$!
baseaddr=""
i=0
while [ $i -lt 50 ]; do
    baseaddr=$(sed -n 's/^gserved: listening on //p' "$smoketmp/base.log")
    [ -n "$baseaddr" ] && break
    kill -0 "$basepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$baseaddr" ]; then
    echo "baseline gserved did not start:" >&2
    cat "$smoketmp/base.log" >&2
    exit 1
fi

n=0
for key in $keys; do
    job=$(jq -c ".jobs[$n]" "$smoketmp/sweep.json" |
        jq -c '{workload: .workload, scale: .scale}')
    code=$(curl -s -o "$smoketmp/basejob_$key.json" -w '%{http_code}' \
        -X POST "http://$baseaddr/v1/jobs?wait=1" -d "$job")
    if [ "$code" != 200 ]; then
        echo "baseline submit for $job: HTTP $code" >&2
        cat "$smoketmp/basejob_$key.json" >&2
        exit 1
    fi
    jq -S '.stats' "$smoketmp/fleetjob_$key.json" >"$smoketmp/fleet_$key.stats"
    jq -S '.stats' "$smoketmp/basejob_$key.json" >"$smoketmp/base_$key.stats"
    if ! grep -q '"Cycles"' "$smoketmp/fleet_$key.stats"; then
        echo "fleet job $key carries no stats:" >&2
        cat "$smoketmp/fleetjob_$key.json" >&2
        exit 1
    fi
    if ! cmp -s "$smoketmp/fleet_$key.stats" "$smoketmp/base_$key.stats"; then
        echo "fleet stats for $key differ from the single-node run:" >&2
        diff "$smoketmp/fleet_$key.stats" "$smoketmp/base_$key.stats" >&2 || true
        exit 1
    fi
    n=$((n + 1))
done

# SIGTERM must drain the coordinator cleanly.
kill -TERM "$schedpid"
i=0
while [ $i -lt 100 ]; do
    kill -0 "$schedpid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
rc=0
wait "$schedpid" || rc=$?
schedpid=""
if [ "$rc" != 0 ]; then
    echo "gsched drain exited $rc:" >&2
    cat "$smoketmp/gsched.log" >&2
    exit 1
fi
grep -q '^gsched: drained' "$smoketmp/gsched.log" || {
    echo "gsched did not report a clean drain:" >&2
    cat "$smoketmp/gsched.log" >&2
    exit 1
}

echo "ok"
