#!/bin/sh
# Pre-PR gate: vet + formatting + build + race-checked tests for the
# concurrency-bearing packages (the runner's worker pool / singleflight,
# the session layer, and the gserved daemon + client — including the
# admission-saturation test), a fuzz smoke pass over the assembler,
# ISA evaluator, and checkpoint decoder, an invariant-audited tier-1
# run, a gserved smoke test (start on a random port, submit a job,
# drain via SIGTERM), and a crash-recovery smoke (kill -9 mid-job,
# journal replay and checkpoint resume after restart).
# Run from the repository root:
#
#     ./tools/check.sh          # race tests in -short mode (~seconds)
#     ./tools/check.sh -full    # race tests without -short
set -eu

cd "$(dirname "$0")/.."

short="-short"
[ "${1-}" = "-full" ] && short=""

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race (runner, harness)"
go test -race $short ./internal/runner/ ./internal/harness/

echo "== go test -race (server saturation + drain, client retries)"
go test -race $short ./internal/server/ ./internal/client/

echo "== go test -race (parallel cycle engine determinism)"
go test -race $short -run 'TestEngineDeterminism|TestLaunchQueue' ./internal/gpu/

echo "== benchmark smoke + allocs/op gate (tools/bench.sh -quick)"
./tools/bench.sh -quick

echo "== fuzz smoke (asm parser, ISA evaluator, checkpoint decoder)"
go test -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm/
go test -fuzz=FuzzEval -fuzztime=10s ./internal/isa/
go test -fuzz=FuzzCheckpointDecode -fuzztime=10s ./internal/checkpoint/

echo "== invariant-audited tier-1 (GPUSHARE_INVARIANT_STRIDE=256)"
GPUSHARE_INVARIANT_STRIDE=256 go test $short ./internal/gpu/ ./internal/workloads/ ./internal/harness/

echo "== gserved smoke test (submit, statusz, SIGTERM drain)"
smoketmp=$(mktemp -d)
smokepid=""
cleanup_smoke() {
    [ -n "$smokepid" ] && kill -9 "$smokepid" 2>/dev/null
    rm -rf "$smoketmp"
}
trap cleanup_smoke EXIT

go build -o "$smoketmp/gserved" ./cmd/gserved
"$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$smoketmp/cache" \
    >"$smoketmp/out.log" 2>&1 &
smokepid=$!

# The daemon prints "gserved: listening on <addr>" as its startup
# handshake; wait for it (5s budget).
addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's/^gserved: listening on //p' "$smoketmp/out.log")
    [ -n "$addr" ] && break
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "gserved did not start:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
fi

code=$(curl -s -o "$smoketmp/job.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/jobs?wait=1" \
    -d '{"workload":"gaussian","scale":1}')
if [ "$code" != 200 ]; then
    echo "gserved submit: HTTP $code" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
fi
grep -q '"state":"done"' "$smoketmp/job.json" || {
    echo "gserved job did not finish:" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
}
grep -q '"Cycles"' "$smoketmp/job.json" || {
    echo "gserved response carries no stats:" >&2
    cat "$smoketmp/job.json" >&2
    exit 1
}

code=$(curl -s -o "$smoketmp/statusz.json" -w '%{http_code}' "http://$addr/statusz")
if [ "$code" != 200 ]; then
    echo "gserved statusz: HTTP $code" >&2
    exit 1
fi
grep -q '"accepted":1' "$smoketmp/statusz.json" || {
    echo "gserved statusz does not count the job:" >&2
    cat "$smoketmp/statusz.json" >&2
    exit 1
}

# SIGTERM must drain and exit 0 within 10s.
kill -TERM "$smokepid"
i=0
while [ $i -lt 100 ]; do
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
if kill -0 "$smokepid" 2>/dev/null; then
    echo "gserved did not exit within 10s of SIGTERM" >&2
    exit 1
fi
rc=0
wait "$smokepid" || rc=$?
smokepid=""
if [ "$rc" != 0 ]; then
    echo "gserved drain exited $rc:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
fi
grep -q '^gserved: drained' "$smoketmp/out.log" || {
    echo "gserved did not report a clean drain:" >&2
    cat "$smoketmp/out.log" >&2
    exit 1
}

echo "== gserved crash-recovery smoke (kill -9 mid-job, journal replay)"
# Start with a job journal and mid-simulation checkpoints, submit a
# multi-second job, kill -9 the daemon mid-run, and verify that a fresh
# daemon replays the journal and finishes the job.
start_crash_daemon() {
    "$smoketmp/gserved" -addr 127.0.0.1:0 -cachedir "$smoketmp/cache2" \
        -journal "$smoketmp/journal.jsonl" \
        -checkpoint-dir "$smoketmp/ckpt" -checkpoint-stride 20000 \
        >"$1" 2>&1 &
    smokepid=$!
    addr=""
    i=0
    while [ $i -lt 50 ]; do
        addr=$(sed -n 's/^gserved: listening on //p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$smokepid" 2>/dev/null || break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "gserved did not start:" >&2
        cat "$1" >&2
        exit 1
    fi
}

start_crash_daemon "$smoketmp/crash1.log"
code=$(curl -s -o "$smoketmp/crashjob.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/jobs" \
    -d '{"workload":"hotspot","scale":2}')
if [ "$code" != 202 ]; then
    echo "gserved crash-smoke submit: HTTP $code" >&2
    cat "$smoketmp/crashjob.json" >&2
    exit 1
fi
key=$(sed -n 's/.*"key":"\([^"]*\)".*/\1/p' "$smoketmp/crashjob.json")
if [ -z "$key" ]; then
    echo "gserved crash-smoke submit returned no job key:" >&2
    cat "$smoketmp/crashjob.json" >&2
    exit 1
fi

# Kill the daemon while the simulation is in flight (the job takes a
# couple of seconds; the kill lands well inside it).
sleep 0.7
kill -9 "$smokepid"
wait "$smokepid" 2>/dev/null || true
smokepid=""

# The write-ahead rule: the accept record must be durable, and no done
# record may exist for a job that never finished.
grep -q "\"op\":\"accept\",\"key\":\"$key\"" "$smoketmp/journal.jsonl" || {
    echo "journal is missing the accept record for the killed job" >&2
    cat "$smoketmp/journal.jsonl" >&2
    exit 1
}
if grep -q "\"op\":\"done\",\"key\":\"$key\"" "$smoketmp/journal.jsonl"; then
    echo "journal marks the killed job done before it finished" >&2
    cat "$smoketmp/journal.jsonl" >&2
    exit 1
fi

# Restart: the journal replays the unfinished job, and polling its key
# (computed by the dead process) must reach "done" (60s budget).
start_crash_daemon "$smoketmp/crash2.log"
i=0
done=""
while [ $i -lt 600 ]; do
    curl -s -o "$smoketmp/crashpoll.json" "http://$addr/v1/jobs/$key" || true
    if grep -q '"state":"done"' "$smoketmp/crashpoll.json"; then
        done=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$done" ]; then
    echo "replayed job did not finish after restart:" >&2
    cat "$smoketmp/crashpoll.json" >&2
    cat "$smoketmp/crash2.log" >&2
    exit 1
fi
grep -q '"Cycles"' "$smoketmp/crashpoll.json" || {
    echo "replayed job carries no stats:" >&2
    cat "$smoketmp/crashpoll.json" >&2
    exit 1
}
# The done record is fsync'd just after the job state flips, so give
# statusz a moment to show the journal fully retired.
i=0
while [ $i -lt 20 ]; do
    curl -s -o "$smoketmp/crashstatusz.json" "http://$addr/statusz"
    grep -q '"pending":0' "$smoketmp/crashstatusz.json" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q '"replayed":1' "$smoketmp/crashstatusz.json" || {
    echo "statusz does not report the journal replay:" >&2
    cat "$smoketmp/crashstatusz.json" >&2
    exit 1
}
grep -q '"pending":0' "$smoketmp/crashstatusz.json" || {
    echo "journal still has pending records after the job finished:" >&2
    cat "$smoketmp/crashstatusz.json" >&2
    exit 1
}

kill -TERM "$smokepid"
i=0
while [ $i -lt 100 ]; do
    kill -0 "$smokepid" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
rc=0
wait "$smokepid" || rc=$?
smokepid=""
if [ "$rc" != 0 ]; then
    echo "gserved crash-smoke drain exited $rc:" >&2
    cat "$smoketmp/crash2.log" >&2
    exit 1
fi

echo "ok"
