#!/bin/sh
# Pre-PR gate: vet + formatting + build + race-checked tests for the
# concurrency-bearing packages (the runner's worker pool / singleflight
# and the session layer on top of it), a fuzz smoke pass over the
# assembler and ISA evaluator, and an invariant-audited tier-1 run.
# Run from the repository root:
#
#     ./tools/check.sh          # race tests in -short mode (~seconds)
#     ./tools/check.sh -full    # race tests without -short
set -eu

cd "$(dirname "$0")/.."

short="-short"
[ "${1-}" = "-full" ] && short=""

echo "== go vet ./..."
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race (runner, harness)"
go test -race $short ./internal/runner/ ./internal/harness/

echo "== fuzz smoke (asm parser, ISA evaluator)"
go test -fuzz=FuzzAssemble -fuzztime=10s ./internal/asm/
go test -fuzz=FuzzEval -fuzztime=10s ./internal/isa/

echo "== invariant-audited tier-1 (GPUSHARE_INVARIANT_STRIDE=256)"
GPUSHARE_INVARIANT_STRIDE=256 go test $short ./internal/gpu/ ./internal/workloads/ ./internal/harness/

echo "ok"
